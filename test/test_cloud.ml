open Pi_cms
open Pi_classifier
open Helpers

let mk ?(flavour = Cloud.Kubernetes) () =
  let cloud = Cloud.create ~flavour ~seed:11L ~n_servers:2 () in
  let victim =
    Cloud.deploy_pod cloud ~tenant:"acme" ~name:"web-1" ~labels:[ "app=web" ]
      ~server:"server-1" ~ip:(ip "10.1.0.2") ()
  in
  let attacker =
    Cloud.deploy_pod cloud ~tenant:"mallory" ~name:"covert-1"
      ~labels:[ "app=covert" ] ~server:"server-1" ~ip:(ip "10.1.0.3") ()
  in
  (cloud, victim, attacker)

let web_policy =
  K8s_policy.make ~name:"allow-clients" ~pod_selector:"app=web"
    ~ingress:
      [ { K8s_policy.from =
            [ K8s_policy.Ip_block { K8s_policy.cidr = pfx "10.0.0.0/8"; except = [] } ];
          ports = [] } ]

let test_topology () =
  let cloud, victim, attacker = mk () in
  Alcotest.(check (list string)) "servers" [ "server-1"; "server-2" ]
    (Cloud.servers cloud);
  Alcotest.(check int) "two pods" 2 (List.length (Cloud.pods cloud));
  Alcotest.(check bool) "ports distinct" true
    (victim.Cloud.port.Pi_ovs.Switch.id <> attacker.Cloud.port.Pi_ovs.Switch.id)

let test_duplicate_pod_rejected () =
  let cloud, _, _ = mk () in
  match
    Cloud.deploy_pod cloud ~tenant:"x" ~name:"web-1" ~server:"server-2"
      ~ip:(ip "10.2.0.9") ()
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "duplicate pod name accepted"

let test_resolve_selector () =
  let cloud, victim, _ = mk () in
  Alcotest.(check (list prefix_t)) "resolves to pod /32"
    [ Pi_pkt.Ipv4_addr.Prefix.make victim.Cloud.ip 32 ]
    (Cloud.resolve_selector cloud "app=web")

let test_ownership_enforced () =
  let cloud, victim, _ = mk () in
  match Cloud.apply_acl cloud ~pod:victim ~tenant:"mallory" Acl.allow_all with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "foreign tenant modified a pod policy"

let test_flavour_gating () =
  let cloud, _, attacker = mk () in
  (match
     Cloud.apply_security_group cloud ~tenant:"mallory" ~pod:attacker
       (Openstack_sg.make ~name:"sg" ~rules:[])
   with
   | Error _ -> ()
   | Ok () -> Alcotest.fail "security group on a k8s cloud");
  let calico =
    Calico_policy.make ~name:"p" ~selector:"app=covert" ~ingress:[] ()
  in
  (match Cloud.apply_calico_policy cloud ~tenant:"mallory" calico with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "calico policy without the calico plugin");
  let calico_cloud, _, _ = mk ~flavour:Cloud.Kubernetes_calico () in
  match Cloud.apply_calico_policy calico_cloud ~tenant:"mallory" calico with
  | Ok n -> Alcotest.(check int) "applied to own pod" 1 n
  | Error e -> Alcotest.fail e

let test_policy_enforced_end_to_end () =
  let cloud, victim, _ = mk () in
  (match Cloud.apply_k8s_policy cloud ~tenant:"acme" web_policy with
   | Ok n -> Alcotest.(check int) "one pod programmed" 1 n
   | Error e -> Alcotest.fail e);
  let allowed =
    Flow.make ~in_port:1 ~ip_src:(ip "10.9.9.9") ~ip_dst:victim.Cloud.ip
      ~ip_proto:6 ~tp_src:1234 ~tp_dst:80 ()
  in
  let denied = Flow.with_field allowed Field.Ip_src 0x0B000001 (* 11.0.0.1 *) in
  let a1, _ = Cloud.process cloud ~now:0. ~server:"server-1" allowed ~pkt_len:100 in
  let a2, _ = Cloud.process cloud ~now:0. ~server:"server-1" denied ~pkt_len:100 in
  Alcotest.(check action_t) "allowed forwarded"
    (Pi_ovs.Action.Output victim.Cloud.port.Pi_ovs.Switch.id) a1;
  Alcotest.(check action_t) "denied dropped" Pi_ovs.Action.Drop a2

let test_policy_replacement () =
  let cloud, victim, _ = mk () in
  (match Cloud.apply_k8s_policy cloud ~tenant:"acme" web_policy with
   | Ok _ -> ()
   | Error e -> Alcotest.fail e);
  (* Replace with a deny-all policy; the old allow must be gone. *)
  let deny_all = K8s_policy.make ~name:"lockdown" ~pod_selector:"app=web" ~ingress:[] in
  (match Cloud.apply_k8s_policy cloud ~tenant:"acme" deny_all with
   | Ok _ -> ()
   | Error e -> Alcotest.fail e);
  let flow =
    Flow.make ~in_port:1 ~ip_src:(ip "10.9.9.9") ~ip_dst:victim.Cloud.ip
      ~ip_proto:6 ~tp_dst:80 ()
  in
  let a, _ = Cloud.process cloud ~now:0. ~server:"server-1" flow ~pkt_len:100 in
  Alcotest.(check action_t) "now denied" Pi_ovs.Action.Drop a

let test_unknown_server () =
  let cloud, _, _ = mk () in
  Alcotest.(check bool) "opt is None" true
    (Cloud.switch_opt cloud "server-99" = None);
  match Cloud.switch_exn cloud "server-99" with
  | exception Cloud.Unknown_server "server-99" -> ()
  | _ -> Alcotest.fail "unknown server should raise"

let test_revalidate_all () =
  let cloud, victim, _ = mk () in
  (match Cloud.apply_k8s_policy cloud ~tenant:"acme" web_policy with
   | Ok _ -> ()
   | Error e -> Alcotest.fail e);
  let flow =
    Flow.make ~in_port:1 ~ip_src:(ip "10.9.9.9") ~ip_dst:victim.Cloud.ip () in
  ignore (Cloud.process cloud ~now:0. ~server:"server-1" flow ~pkt_len:100);
  Alcotest.(check int) "idle flow evicted everywhere" 1
    (Cloud.revalidate_all cloud ~now:1000.)

(* --- fabric delivery --- *)

let mk_two_servers () =
  let cloud = Cloud.create ~flavour:Cloud.Kubernetes ~seed:12L ~n_servers:2 () in
  let web =
    Cloud.deploy_pod cloud ~tenant:"acme" ~name:"web" ~labels:[ "app=web" ]
      ~server:"server-1" ~ip:(ip "10.1.0.2") ()
  in
  let db =
    Cloud.deploy_pod cloud ~tenant:"acme" ~name:"db" ~labels:[ "app=db" ]
      ~server:"server-2" ~ip:(ip "10.2.0.2") ()
  in
  (cloud, web, db)

let flow_to ?(src = "10.1.0.2") dst =
  Flow.make ~ip_src:(ip src) ~ip_dst:(ip dst) ~ip_proto:6 ~tp_src:33000
    ~tp_dst:5432 ()

let test_deliver_cross_server () =
  let cloud, web, db = mk_two_servers () in
  (* db accepts only the web pod. *)
  let pol =
    K8s_policy.make ~name:"db-from-web" ~pod_selector:"app=db"
      ~ingress:[ { K8s_policy.from = [ K8s_policy.Pod_selector "app=web" ]; ports = [] } ]
  in
  (match Cloud.apply_k8s_policy cloud ~tenant:"acme" pol with
   | Ok 1 -> ()
   | Ok n -> Alcotest.failf "expected 1 pod, got %d" n
   | Error e -> Alcotest.fail e);
  let hops = Cloud.deliver cloud ~now:0. ~src_pod:web (flow_to "10.2.0.2") ~pkt_len:200 in
  Alcotest.(check int) "two hops" 2 (List.length hops);
  (match hops with
   | [ h1; h2 ] ->
     Alcotest.(check string) "first hop at source" "server-1" h1.Cloud.hop_server;
     Alcotest.(check action_t) "takes the uplink" (Pi_ovs.Action.Output 1)
       h1.Cloud.hop_action;
     Alcotest.(check string) "second hop at destination" "server-2" h2.Cloud.hop_server;
     Alcotest.(check action_t) "delivered to the pod"
       (Pi_ovs.Action.Output db.Cloud.port.Pi_ovs.Switch.id) h2.Cloud.hop_action
   | _ -> Alcotest.fail "unexpected hop shape");
  (* A stranger source is dropped at the destination hypervisor. *)
  let hops' =
    Cloud.deliver cloud ~now:0. ~src_pod:web (flow_to ~src:"9.9.9.9" "10.2.0.2")
      ~pkt_len:200
  in
  match List.rev hops' with
  | last :: _ ->
    Alcotest.(check action_t) "denied at destination" Pi_ovs.Action.Drop
      last.Cloud.hop_action
  | [] -> Alcotest.fail "no hops"

let test_deliver_same_server () =
  let cloud, web, _ = mk_two_servers () in
  let api =
    Cloud.deploy_pod cloud ~tenant:"acme" ~name:"api" ~server:"server-1"
      ~ip:(ip "10.1.0.9") ()
  in
  (match Cloud.apply_acl cloud ~pod:api ~tenant:"acme" Acl.allow_all with
   | Ok () -> ()
   | Error e -> Alcotest.fail e);
  let hops = Cloud.deliver cloud ~now:0. ~src_pod:web (flow_to "10.1.0.9") ~pkt_len:200 in
  Alcotest.(check int) "one hop, same host" 1 (List.length hops);
  match hops with
  | [ h ] ->
    Alcotest.(check action_t) "delivered locally"
      (Pi_ovs.Action.Output api.Cloud.port.Pi_ovs.Switch.id) h.Cloud.hop_action
  | _ -> Alcotest.fail "unexpected"

let test_deliver_unknown_dst_takes_uplink () =
  let cloud, web, _ = mk_two_servers () in
  let hops = Cloud.deliver cloud ~now:0. ~src_pod:web (flow_to "8.8.8.8") ~pkt_len:200 in
  match hops with
  | [ h ] ->
    Alcotest.(check action_t) "leaves via the uplink" (Pi_ovs.Action.Output 1)
      h.Cloud.hop_action
  | _ -> Alcotest.fail "expected a single hop"

let suite =
  [ Alcotest.test_case "topology" `Quick test_topology;
    Alcotest.test_case "duplicate pod rejected" `Quick test_duplicate_pod_rejected;
    Alcotest.test_case "resolve selector" `Quick test_resolve_selector;
    Alcotest.test_case "ownership enforced" `Quick test_ownership_enforced;
    Alcotest.test_case "flavour gating" `Quick test_flavour_gating;
    Alcotest.test_case "policy enforced end to end" `Quick test_policy_enforced_end_to_end;
    Alcotest.test_case "policy replacement" `Quick test_policy_replacement;
    Alcotest.test_case "unknown server" `Quick test_unknown_server;
    Alcotest.test_case "revalidate all" `Quick test_revalidate_all;
    Alcotest.test_case "deliver across the fabric" `Quick test_deliver_cross_server;
    Alcotest.test_case "deliver on the same host" `Quick test_deliver_same_server;
    Alcotest.test_case "unknown destination takes uplink" `Quick
      test_deliver_unknown_dst_takes_uplink ]
