(* Observability layer (0.11.0): histogram snapshots and windows, the
   scrape-v2 columns, the bounded JSONL sample log, and the per-stage
   cycle profiler — including the conformance guarantees the ISSUE
   demands: profiler totals decompose the dataplane's charge exactly,
   parallel and sequential shard execution merge to identical per-stage
   totals, and enabling any of it changes no result bit. *)

open Pi_telemetry
open Helpers

(* --- Histogram snapshots -------------------------------------------- *)

(* lo=1 growth=2 n_buckets=4 -> finite edges 1,2,4,8,16. *)
let small_hist () = Histogram.create ~lo:1.0 ~growth:2.0 ~n_buckets:4 ~name:"h" ()

let test_snapshot_empty () =
  let h = small_hist () in
  let s = Histogram.snapshot h in
  Alcotest.(check int) "empty count" 0 (Histogram.snapshot_count s);
  Alcotest.(check (float 0.)) "empty sum" 0. (Histogram.snapshot_sum s);
  Alcotest.(check bool) "empty mean nan" true
    (Float.is_nan (Histogram.snapshot_mean s));
  Alcotest.(check bool) "empty percentile nan" true
    (Float.is_nan (Histogram.snapshot_percentile h s 50.))

let test_snapshot_diff_window () =
  let h = small_hist () in
  Histogram.observe h 1.5;
  Histogram.observe h 3.0;
  let before = Histogram.snapshot h in
  (* The window: one underflow, one finite, one overflow observation. *)
  Histogram.observe h 0.25;
  Histogram.observe h 5.0;
  Histogram.observe h 100.0;
  let after = Histogram.snapshot h in
  let win = Histogram.snapshot_create h in
  Histogram.snapshot_diff ~into:win after before;
  Alcotest.(check int) "window count" 3 (Histogram.snapshot_count win);
  Alcotest.(check (float 1e-9)) "window sum" 105.25
    (Histogram.snapshot_sum win);
  Alcotest.(check int) "underflow bucket delta" 1 win.Histogram.sn_counts.(0);
  Alcotest.(check int) "overflow bucket delta" 1
    win.Histogram.sn_counts.(Histogram.n_buckets h + 1);
  (* Catch-all edge semantics: underflow reports lo, overflow the last
     finite bound. *)
  Alcotest.(check (float 1e-9)) "p0 -> underflow reports lo" 1.0
    (Histogram.snapshot_percentile h win 0.);
  Alcotest.(check (float 1e-9)) "p100 -> overflow reports last bound" 16.0
    (Histogram.snapshot_percentile h win 100.)

let test_snapshot_diff_negative_raises () =
  let h = small_hist () in
  Histogram.observe h 2.0;
  let s1 = Histogram.snapshot h in
  Histogram.observe h 3.0;
  let s2 = Histogram.snapshot h in
  let into = Histogram.snapshot_create h in
  (* [s1 - s2] would drive a bucket negative. *)
  match Histogram.snapshot_diff ~into s1 s2 with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "reversed diff accepted"

let test_snapshot_merge_cross_shard () =
  (* Two shards observing disjoint streams; merged snapshot must equal
     the snapshot of one histogram that saw both streams. *)
  let h1 = small_hist () and h2 = small_hist () and all = small_hist () in
  List.iter (fun v -> Histogram.observe h1 v; Histogram.observe all v)
    [ 1.0; 3.0; 3.5 ];
  List.iter (fun v -> Histogram.observe h2 v; Histogram.observe all v)
    [ 0.5; 9.0; 20.0 ];
  let acc = Histogram.snapshot_create h1 in
  Histogram.snapshot_merge ~into:acc (Histogram.snapshot h1);
  Histogram.snapshot_merge ~into:acc (Histogram.snapshot h2);
  let expect = Histogram.snapshot all in
  Alcotest.(check int) "merged count" (Histogram.snapshot_count expect)
    (Histogram.snapshot_count acc);
  Alcotest.(check (float 1e-9)) "merged sum" (Histogram.snapshot_sum expect)
    (Histogram.snapshot_sum acc);
  Array.iteri
    (fun i c ->
      Alcotest.(check int) (Printf.sprintf "bucket %d" i)
        expect.Histogram.sn_counts.(i) c)
    acc.Histogram.sn_counts;
  List.iter
    (fun p ->
      Alcotest.(check (float 0.)) (Printf.sprintf "merged p%g" p)
        (Histogram.snapshot_percentile all expect p)
        (Histogram.snapshot_percentile h1 acc p))
    [ 0.; 50.; 99.; 100. ]

(* Brute-force reference: nearest-rank over each observation's bucket
   upper edge (lo for underflow, last finite bound for overflow) —
   exactly the resolution the snapshot percentile promises. *)
let brute_percentile h values p =
  let edge v =
    let i = Histogram.bucket_index h v in
    if i = 0 then 1.0 (* lo *)
    else if i = Histogram.n_buckets h + 1 then 16.0 (* last finite bound *)
    else snd (Histogram.bucket_bounds h i)
  in
  let edges = List.sort compare (List.map edge values) in
  let n = List.length edges in
  let rank = max 1 (int_of_float (ceil (p /. 100. *. float_of_int n))) in
  List.nth edges (rank - 1)

let test_windowed_p99_vs_brute_force () =
  let h = small_hist () in
  let w = Window.create h in
  (* Warm the histogram with pre-window noise the window must ignore. *)
  List.iter (Histogram.observe h) [ 0.1; 2.0; 2.0; 50.0 ];
  Window.tick w;
  let values =
    [ 0.5; 1.0; 1.5; 2.5; 3.0; 3.5; 4.5; 6.0; 7.9; 9.0; 14.0; 30.0 ]
  in
  List.iter (Histogram.observe h) values;
  Window.tick w;
  Alcotest.(check int) "window count" (List.length values) (Window.count w);
  List.iter
    (fun p ->
      Alcotest.(check (float 1e-9)) (Printf.sprintf "windowed p%g" p)
        (brute_percentile h values p)
        (Window.percentile w p))
    [ 0.; 10.; 50.; 90.; 99.; 100. ]

let test_percentile_domain_checks () =
  let h = small_hist () in
  Histogram.observe h 2.0;
  let s = Histogram.snapshot h in
  List.iter
    (fun p ->
      (match Histogram.percentile h p with
       | exception Invalid_argument _ -> ()
       | _ -> Alcotest.fail (Printf.sprintf "percentile %f accepted" p));
      match Histogram.snapshot_percentile h s p with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail (Printf.sprintf "snapshot percentile %f accepted" p))
    [ -0.001; 100.001; nan ]

(* --- Window + Ewma --------------------------------------------------- *)

let test_window_ticks () =
  let h = small_hist () in
  let w = Window.create h in
  Alcotest.(check int) "no ticks yet" 0 (Window.ticks w);
  Alcotest.(check int) "empty before first tick" 0 (Window.count w);
  List.iter (Histogram.observe h) [ 2.0; 2.0; 6.0 ];
  Window.tick w;
  Alcotest.(check int) "first window" 3 (Window.count w);
  Alcotest.(check (float 1e-9)) "first window sum" 10.0 (Window.sum w);
  List.iter (Histogram.observe h) [ 12.0 ];
  Window.tick w;
  Alcotest.(check int) "second window forgot the first" 1 (Window.count w);
  Alcotest.(check (float 1e-9)) "second window p50 is its own" 16.0
    (Window.p50 w);
  Window.tick w;
  Alcotest.(check int) "idle window empty" 0 (Window.count w);
  Alcotest.(check int) "three ticks" 3 (Window.ticks w)

let test_ewma_rates () =
  let e = Window.Ewma.create ~alpha:0.3 () in
  Alcotest.(check bool) "rate nan before anchor" true
    (Float.is_nan (Window.Ewma.rate e));
  Window.Ewma.tick e ~now:0. 0.;
  Alcotest.(check bool) "anchor closes no window" true
    (Float.is_nan (Window.Ewma.rate e));
  Window.Ewma.tick e ~now:1. 10.;
  Alcotest.(check (float 1e-9)) "first window rate" 10. (Window.Ewma.rate e);
  Window.Ewma.tick e ~now:1. 10.;
  Alcotest.(check int) "equal timestamp ignored" 1 (Window.Ewma.windows e);
  Window.Ewma.tick e ~now:2. 30.;
  Alcotest.(check (float 1e-9)) "instantaneous" 20. (Window.Ewma.last_rate e);
  Alcotest.(check (float 1e-9)) "smoothed" 13. (Window.Ewma.rate e);
  match Window.Ewma.create ~alpha:1.5 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "alpha > 1 accepted"

(* --- Scrape v2 -------------------------------------------------------- *)

let test_scrape_late_registration () =
  let s = Scrape.create () in
  Scrape.register s ~name:"a" (fun () -> 1.);
  Scrape.tick s ~now:0.;
  Scrape.tick s ~now:1.;
  Scrape.register s ~name:"b" (fun () -> 2.);
  Scrape.tick s ~now:2.;
  Alcotest.(check int) "ticks" 3 (Scrape.n_ticks s);
  (match Scrape.samples s "a" with
   | Some (start, vs) ->
     Alcotest.(check int) "a starts at tick 0" 0 start;
     Alcotest.(check int) "a has every sample" 3 (Array.length vs)
   | None -> Alcotest.fail "a missing");
  (match Scrape.samples s "b" with
   | Some (start, vs) ->
     Alcotest.(check int) "late source starts at its first tick" 2 start;
     Alcotest.(check int) "one sample" 1 (Array.length vs);
     Alcotest.(check (float 0.)) "value" 2. vs.(0)
   | None -> Alcotest.fail "b missing");
  (* The compat Timeseries view of a late source spans only its ticks. *)
  match Scrape.series s "b" with
  | Some ts ->
    Alcotest.(check (list (pair (float 1e-9) (float 1e-9)))) "series b"
      [ (2., 2.) ] (Timeseries.to_list ts)
  | None -> Alcotest.fail "series b missing"

let test_scrape_time_monotonic () =
  let s = Scrape.create () in
  Scrape.register s ~name:"x" (fun () -> 0.);
  Scrape.tick s ~now:1.;
  match Scrape.tick s ~now:0.5 with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "time went backwards"

let test_scrape_sample_log_lines () =
  let s = Scrape.create () in
  let v = ref 1.5 in
  Scrape.register s ~name:"masks" (fun () -> !v);
  Scrape.register s ~name:"bad" (fun () -> nan);
  let log = Sample_log.create ~capacity:8 () in
  Scrape.attach_log s log;
  Scrape.tick s ~now:0.;
  v := 2.;
  Scrape.tick s ~now:1.;
  Alcotest.(check (list string)) "one sorted-key JSONL record per tick"
    [ {|{"samples":{"bad":null,"masks":1.5},"t":0}|};
      {|{"samples":{"bad":null,"masks":2},"t":1}|} ]
    (Sample_log.lines log)

(* --- Sample_log ring -------------------------------------------------- *)

let test_sample_log_ring () =
  let l = Sample_log.create ~capacity:2 () in
  Sample_log.record l "one";
  Sample_log.record l "two";
  Sample_log.record l "three";
  Alcotest.(check int) "total" 3 (Sample_log.total l);
  Alcotest.(check int) "retained" 2 (Sample_log.retained l);
  Alcotest.(check int) "dropped" 1 (Sample_log.dropped l);
  Alcotest.(check (list string)) "oldest first" [ "two"; "three" ]
    (Sample_log.lines l);
  match Sample_log.create ~capacity:0 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "capacity 0 accepted"

(* --- Perf: unit behaviour --------------------------------------------- *)

let test_perf_merge_equals_union () =
  let mk () =
    let p = Perf.create () in
    Perf.configure ~emc_lookup:10. ~mf_probe:7. ~mf_hit_fixed:3. ~upcall:500.
      ~slow_probe:11. ~per_byte:0.25 ~batch:40. p;
    p
  in
  let feed p hits =
    List.iter
      (fun (len, emc, probes, hit, up, sp) ->
        Perf.record p ~pkt_len:len ~emc_hit:emc ~mf_probes:probes ~mf_hit:hit
          ~upcalled:up ~slow_probes:sp)
      hits
  in
  let s1 = [ (64, true, 0, false, false, 0); (100, false, 3, true, false, 0) ]
  and s2 = [ (1500, false, 5, false, true, 2) ] in
  let a = mk () and b = mk () and u = mk () in
  feed a s1;
  feed b s2;
  Perf.record_batch b;
  Perf.record_reval b ~evicted:4;
  feed u (s1 @ s2);
  Perf.record_batch u;
  Perf.record_reval u ~evicted:4;
  let merged = Perf.create () in
  Perf.merge ~into:merged a;
  Perf.merge ~into:merged b;
  for st = 0 to Perf.n_stages - 1 do
    Alcotest.(check (float 0.)) (Perf.stage_name st)
      (Perf.stage_cycles u st) (Perf.stage_cycles merged st)
  done;
  Alcotest.(check int) "packets" (Perf.packets u) (Perf.packets merged);
  Alcotest.(check int) "emc hits" (Perf.emc_hits u) (Perf.emc_hits merged);
  Alcotest.(check int) "mf probes" (Perf.mf_probes u) (Perf.mf_probes merged);
  Alcotest.(check int) "upcalls" (Perf.upcalls u) (Perf.upcalls merged);
  Alcotest.(check int) "batches" (Perf.batches u) (Perf.batches merged);
  Alcotest.(check int) "reval evicted" (Perf.reval_evicted u)
    (Perf.reval_evicted merged);
  Alcotest.(check (float 0.)) "total" (Perf.total_cycles u)
    (Perf.total_cycles merged)

let test_perf_reset_keeps_coefficients () =
  let p = Perf.create () in
  Perf.configure ~emc_lookup:10. ~per_byte:0.5 p;
  let shot () =
    Perf.record p ~pkt_len:100 ~emc_hit:true ~mf_probes:0 ~mf_hit:false
      ~upcalled:false ~slow_probes:0;
    Perf.total_cycles p
  in
  let first = shot () in
  Alcotest.(check bool) "recorded something" true (first > 0.);
  Perf.reset p;
  Alcotest.(check (float 0.)) "reset zeroes totals" 0. (Perf.total_cycles p);
  Alcotest.(check int) "reset zeroes counters" 0 (Perf.packets p);
  Alcotest.(check (float 0.)) "coefficients survive reset" first (shot ())

let test_perf_stage_names () =
  Alcotest.(check string) "steer" "steering" (Perf.stage_name Perf.stage_steer);
  Alcotest.(check string) "batch" "batch" (Perf.stage_name Perf.stage_batch);
  match Perf.stage_name Perf.n_stages with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "out-of-range stage accepted"

(* --- Perf: the exact-decomposition invariant --------------------------- *)

open Pi_ovs
open Pi_classifier

let rules =
  [ Rule.make ~priority:100
      ~pattern:(Pattern.with_ip_src Pattern.any (pfx "10.0.0.10/32"))
      ~action:(Action.Output 2) ();
    Rule.make ~priority:1 ~pattern:Pattern.any ~action:Action.Drop () ]

let trusted = Flow.make ~ip_src:(ip "10.0.0.10") ()

let covert k =
  let src = Int32.logxor (Pi_pkt.Ipv4_addr.of_string "10.0.0.10")
      (Int32.shift_left 1l (31 - k)) in
  Flow.make ~ip_src:src ()

(* Mixed traffic: upcalls, EMC hits, megaflow hits, varying lengths. *)
let traffic =
  Array.init 64 (fun i ->
      let f = if i mod 3 = 0 then trusted else covert (i mod 24) in
      (f, 64 + (i mod 4) * 400))

let merged_perf dp =
  let acc = Perf.create () in
  for s = 0 to Dataplane.n_shards dp - 1 do
    match Dataplane.shard_perf dp s with
    | Some p -> Perf.merge ~into:acc p
    | None -> ()
  done;
  acc

let stage_totals p = Array.init Perf.n_stages (Perf.stage_cycles p)

(* The profiler accumulates per stage and the dataplane keeps one
   running total, so the two sums associate differently — equal to
   float rounding, not to the bit. *)
let check_close msg expect got =
  let tol = 1e-9 *. Float.max 1. (Float.abs expect) in
  if Float.abs (expect -. got) > tol then
    Alcotest.failf "%s: expected %.17g, got %.17g" msg expect got

let test_perf_decomposes_datapath_charge () =
  (* Stage sum == fast-path cycles + deferred-handler cycles, to the
     bit, including a bounded queue with deferred servicing. *)
  let backend =
    Dataplane.datapath
      ~config:{ Datapath.default_config with
                Datapath.upcall_queue = Upcall_queue.bounded 16;
                emc_insert_inv_prob = 1 }
      ()
  in
  let ctx = Ctx.v ~perf:(Perf.create ()) () in
  let dp = Dataplane.create ~telemetry:ctx backend (Pi_pkt.Prng.create 7L) in
  Dataplane.install_rules dp rules;
  ignore (Dataplane.process_burst dp ~now:0. traffic);
  ignore (Dataplane.service_upcalls dp ~now:0.5);
  ignore (Dataplane.process_burst dp ~now:1. traffic);
  ignore (Dataplane.revalidate dp ~now:2.);
  let p = merged_perf dp in
  let st = Dataplane.stats dp in
  check_close "stage sum = charged cycles"
    (st.Dataplane.cycles +. st.Dataplane.handler_cycles)
    (Perf.total_cycles p);
  Alcotest.(check int) "profiler saw every packet" st.Dataplane.packets
    (Perf.packets p);
  Alcotest.(check int) "handler upcalls profiled" st.Dataplane.upcalls
    (Perf.upcalls p + Perf.handler_upcalls p);
  Alcotest.(check bool) "reval sweep counted" true (Perf.reval_sweeps p = 1)

let test_perf_parallel_equals_sequential () =
  (* The conformance demand: a Domain-parallel Pmd run merges to the
     same per-stage totals as the sequential one, bit for bit. *)
  let run parallel =
    let config =
      { Pmd.default_config with
        Pmd.n_shards = 4; batch_size = 8; batch_cycles = 25.; parallel }
    in
    let pmd =
      Pmd.create ~config ~telemetry:(Ctx.v ~perf:(Perf.create ()) ())
        (Pi_pkt.Prng.create 7L) ()
    in
    Pmd.install_rules pmd rules;
    ignore (Pmd.process_burst pmd ~now:0. traffic);
    ignore (Pmd.process_burst pmd ~now:1. traffic);
    ignore (Pmd.revalidate pmd ~now:2.);
    let acc = Perf.create () in
    for s = 0 to Pmd.n_shards pmd - 1 do
      match Pmd.shard_perf pmd s with
      | Some p -> Perf.merge ~into:acc p
      | None -> Alcotest.fail "shard without profiler"
    done;
    (stage_totals acc,
     Pmd.cycles_used pmd +. Pmd.handler_cycles_used pmd,
     Perf.total_cycles acc)
  in
  let seq, seq_charged, seq_total = run false in
  let par, par_charged, par_total = run true in
  Array.iteri
    (fun st c ->
      Alcotest.(check (float 0.)) (Perf.stage_name st) c par.(st))
    seq;
  check_close "stage sum = pmd charge (incl. batch)" seq_charged seq_total;
  Alcotest.(check (float 0.)) "parallel charge identical" seq_charged
    par_charged;
  Alcotest.(check (float 0.)) "parallel total identical" seq_total par_total

let test_perf_across_backends () =
  (* Every Dataplane backend honours shard_perf: the cached ones
     decompose their charge exactly; the cache-less baseline has no
     stages and reports None without raising. *)
  let check_backend label backend cached =
    let ctx = Ctx.v ~perf:(Perf.create ()) () in
    let dp = Dataplane.create ~telemetry:ctx backend (Pi_pkt.Prng.create 7L) in
    Dataplane.install_rules dp rules;
    ignore (Dataplane.process_burst dp ~now:0. traffic);
    let p = merged_perf dp in
    let st = Dataplane.stats dp in
    if cached then begin
      Alcotest.(check bool) (label ^ ": profiler present") true
        (Dataplane.shard_perf dp 0 <> None);
      check_close (label ^ ": exact decomposition")
        (st.Dataplane.cycles +. st.Dataplane.handler_cycles)
        (Perf.total_cycles p)
    end
    else
      Alcotest.(check bool) (label ^ ": no profiler to report") true
        (Dataplane.shard_perf dp 0 = None);
    match Dataplane.shard_perf dp (Dataplane.n_shards dp) with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail (label ^ ": out-of-range shard_perf must raise")
  in
  check_backend "datapath" (Dataplane.datapath ()) true;
  check_backend "pmd"
    (Dataplane.pmd
       ~config:{ Pmd.default_config with Pmd.n_shards = 2; batch_cycles = 10. }
       ())
    true;
  check_backend "cacheless" (Pi_mitigation.Cacheless.dataplane ()) false

let test_profiler_off_parity () =
  (* Profiling is observation only: identical verdicts, cycles, caches. *)
  let run profile =
    let telemetry = if profile then Some (Ctx.v ~perf:(Perf.create ()) ()) else None in
    let dp =
      Dataplane.create ?telemetry (Dataplane.datapath ())
        (Pi_pkt.Prng.create 42L)
    in
    Dataplane.install_rules dp rules;
    let rs = Dataplane.process_burst dp ~now:0. traffic in
    ignore (Dataplane.revalidate dp ~now:1.);
    let rs2 = Dataplane.process_burst dp ~now:2. traffic in
    let st = Dataplane.stats dp in
    (Array.map fst (Array.append rs rs2), st.Dataplane.cycles,
     st.Dataplane.masks, st.Dataplane.megaflows, st.Dataplane.upcalls)
  in
  let (a1, cy1, m1, g1, u1) = run false and (a2, cy2, m2, g2, u2) = run true in
  Alcotest.(check (array action_t)) "same verdicts" a1 a2;
  Alcotest.(check (float 0.)) "same cycles" cy1 cy2;
  Alcotest.(check int) "same masks" m1 m2;
  Alcotest.(check int) "same megaflows" g1 g2;
  Alcotest.(check int) "same upcalls" u1 u2

(* --- Scenario profile + monitor ---------------------------------------- *)

let scenario_params () =
  let open Pi_sim in
  { Scenario.default_params with
    Scenario.duration = 8.;
    attack =
      Some { Scenario.default_attack with Scenario.start = 3. };
    n_shards = 2;
    metrics = Some (Metrics.create ());
    provenance = true;
    profile = true }

let test_scenario_report_perf () =
  let open Pi_sim in
  let r = Scenario.run (scenario_params ()) in
  match r.Scenario.perf with
  | None -> Alcotest.fail "profiled run must report merged perf"
  | Some p ->
    Alcotest.(check bool) "packets profiled" true (Perf.packets p > 0);
    Alcotest.(check bool) "megaflow stage charged under attack" true
      (Perf.stage_cycles p Perf.stage_mf > 0.);
    Alcotest.(check bool) "slow path charged under attack" true
      (Perf.stage_cycles p Perf.stage_upcall > 0.)

let test_monitor_tracks_attack () =
  let open Pi_sim in
  let mon = ref None in
  let frames = ref [] and jsons = ref [] in
  let on_sample dp s =
    let m =
      match !mon with
      | Some m -> m
      | None ->
        let m = Monitor.create dp in
        mon := Some m;
        m
    in
    Monitor.observe m dp s;
    frames := Monitor.frame m dp s :: !frames;
    jsons := Monitor.json m dp s :: !jsons
  in
  let p = { (scenario_params ()) with Pi_sim.Scenario.on_sample = Some on_sample } in
  ignore (Scenario.run p);
  let last_frame = List.hd !frames and last_json = List.hd !jsons in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "frame mentions %S" needle) true
        (Astring_like.contains last_frame needle))
    [ "masks"; "upcalls"; "win-p99"; "stage-share"; "suspect  tenant 3" ];
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "json carries %S" needle) true
        (Astring_like.contains last_json needle))
    [ {|"cycles":{"tick_avg":|}; {|"stages":{"batch":|};
      {|"suspect":{"masks":|}; {|"tenant":3|}; {|"victim_gbps":|} ];
  Alcotest.(check bool) "json newline-terminated" true
    (last_json.[String.length last_json - 1] = '\n');
  (* Byte-stability: the same seeded run renders the same bytes. *)
  let jsons2 = ref [] in
  let mon2 = ref None in
  let p2 =
    { (scenario_params ()) with
      Pi_sim.Scenario.on_sample =
        Some
          (fun dp s ->
            let m =
              match !mon2 with
              | Some m -> m
              | None ->
                let m = Monitor.create dp in
                mon2 := Some m;
                m
            in
            Monitor.observe m dp s;
            jsons2 := Monitor.json m dp s :: !jsons2) }
  in
  ignore (Scenario.run p2);
  Alcotest.(check (list string)) "json snapshots byte-stable" !jsons !jsons2;
  (* The attack's onset is visible in the windowed percentile: the
     monitor's merged win-p99 after the attack dwarfs the pre-attack
     one. *)
  match !mon with
  | None -> Alcotest.fail "monitor never created"
  | Some m -> Alcotest.(check bool) "ticks observed" true (Monitor.ticks m > 0)

let test_pmd_perf_show_reports_stages () =
  (* dpctl pmd-perf-show renders the per-stage breakdown for a profiled
     dataplane. *)
  let ctx = Ctx.v ~metrics:(Metrics.create ()) ~perf:(Perf.create ()) () in
  let dp =
    Dataplane.create ~telemetry:ctx
      (Dataplane.pmd
         ~config:{ Pmd.default_config with Pmd.n_shards = 2; batch_cycles = 30. }
         ())
      (Pi_pkt.Prng.create 7L)
  in
  Dataplane.install_rules dp rules;
  ignore (Dataplane.process_burst dp ~now:0. traffic);
  let text = Format.asprintf "%a" Dpctl.pmd_perf dp in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "report has %S" needle) true
        (Astring_like.contains text needle))
    [ "per-stage cycles:"; "steering:"; "emc:"; "megaflow:"; "upcall:";
      "batch:"; "avg cycles/pkt:"; "avg subtables/walk:"; "rx batches:" ]

let suite =
  [ Alcotest.test_case "snapshot: empty" `Quick test_snapshot_empty;
    Alcotest.test_case "snapshot: diff brackets a window" `Quick
      test_snapshot_diff_window;
    Alcotest.test_case "snapshot: reversed diff raises" `Quick
      test_snapshot_diff_negative_raises;
    Alcotest.test_case "snapshot: cross-shard merge" `Quick
      test_snapshot_merge_cross_shard;
    Alcotest.test_case "windowed percentiles vs brute force" `Quick
      test_windowed_p99_vs_brute_force;
    Alcotest.test_case "percentile domain checks" `Quick
      test_percentile_domain_checks;
    Alcotest.test_case "window: tick semantics" `Quick test_window_ticks;
    Alcotest.test_case "ewma rates" `Quick test_ewma_rates;
    Alcotest.test_case "scrape: late registration" `Quick
      test_scrape_late_registration;
    Alcotest.test_case "scrape: time monotonic" `Quick
      test_scrape_time_monotonic;
    Alcotest.test_case "scrape: sample-log lines" `Quick
      test_scrape_sample_log_lines;
    Alcotest.test_case "sample log: bounded ring" `Quick test_sample_log_ring;
    Alcotest.test_case "perf: merge equals union" `Quick
      test_perf_merge_equals_union;
    Alcotest.test_case "perf: reset keeps coefficients" `Quick
      test_perf_reset_keeps_coefficients;
    Alcotest.test_case "perf: stage names" `Quick test_perf_stage_names;
    Alcotest.test_case "perf: decomposes the datapath charge" `Quick
      test_perf_decomposes_datapath_charge;
    Alcotest.test_case "perf: parallel = sequential (merged)" `Quick
      test_perf_parallel_equals_sequential;
    Alcotest.test_case "perf: all backends conform" `Quick
      test_perf_across_backends;
    Alcotest.test_case "profiler off = on, minus the report" `Quick
      test_profiler_off_parity;
    Alcotest.test_case "scenario: profiled report" `Quick
      test_scenario_report_perf;
    Alcotest.test_case "monitor: tracks the attack" `Quick
      test_monitor_tracks_attack;
    Alcotest.test_case "dpctl pmd-perf-show stages" `Quick
      test_pmd_perf_show_reports_stages ]
