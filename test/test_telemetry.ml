open Pi_telemetry
open Helpers

(* --- Histogram --- *)

(* lo=1 growth=2 n_buckets=4 -> finite bucket edges 1,2,4,8,16. *)
let small_hist () = Histogram.create ~lo:1.0 ~growth:2.0 ~n_buckets:4 ~name:"h" ()

let test_hist_bucket_boundaries () =
  let h = small_hist () in
  Alcotest.(check int) "underflow" 0 (Histogram.bucket_index h 0.5);
  Alcotest.(check int) "lo lands in bucket 1" 1 (Histogram.bucket_index h 1.0);
  Alcotest.(check int) "just below edge" 1 (Histogram.bucket_index h 1.999);
  Alcotest.(check int) "edge opens next bucket" 2 (Histogram.bucket_index h 2.0);
  Alcotest.(check int) "last finite bucket" 4 (Histogram.bucket_index h 15.999);
  Alcotest.(check int) "top edge overflows" 5 (Histogram.bucket_index h 16.0);
  Alcotest.(check int) "far overflow" 5 (Histogram.bucket_index h 1e9);
  let lo, hi = Histogram.bucket_bounds h 3 in
  Alcotest.(check (float 1e-9)) "bucket 3 lo" 4.0 lo;
  Alcotest.(check (float 1e-9)) "bucket 3 hi" 8.0 hi;
  let lo, _ = Histogram.bucket_bounds h 0 in
  Alcotest.(check bool) "underflow open below" true (lo = neg_infinity);
  let _, hi = Histogram.bucket_bounds h 5 in
  Alcotest.(check bool) "overflow open above" true (hi = infinity)

let test_hist_exact_stats () =
  let h = small_hist () in
  for v = 1 to 10 do Histogram.observe h (float_of_int v) done;
  Alcotest.(check int) "count" 10 (Histogram.count h);
  Alcotest.(check (float 1e-9)) "sum" 55.0 (Histogram.sum h);
  Alcotest.(check (float 1e-9)) "mean" 5.5 (Histogram.mean h);
  Alcotest.(check (float 1e-9)) "min" 1.0 (Histogram.min_value h);
  Alcotest.(check (float 1e-9)) "max" 10.0 (Histogram.max_value h)

let test_hist_percentiles () =
  let h = small_hist () in
  for v = 1 to 10 do Histogram.observe h (float_of_int v) done;
  (* Rank 5 of 10 falls in bucket [4,8): reported as its upper edge. *)
  Alcotest.(check (float 1e-9)) "p50 = bucket upper edge" 8.0
    (Histogram.percentile h 50.);
  (* Rank 10 falls in [8,16) but the edge is clamped to the observed max. *)
  Alcotest.(check (float 1e-9)) "p99 clamped to max" 10.0
    (Histogram.percentile h 99.);
  (* Rank 1 falls in [1,2): bucket resolution, so its upper edge. *)
  Alcotest.(check (float 1e-9)) "p0 = first occupied bucket edge" 2.0
    (Histogram.percentile h 0.)

let test_hist_single_value_exact () =
  let h = small_hist () in
  Histogram.observe h 5.0;
  let s = Histogram.summary h in
  Alcotest.(check (float 1e-9)) "p50 exact for single value" 5.0 s.Histogram.s_p50;
  Alcotest.(check (float 1e-9)) "p99 exact for single value" 5.0 s.Histogram.s_p99;
  Alcotest.(check (float 1e-9)) "mean" 5.0 s.Histogram.s_mean

let test_hist_empty_and_reset () =
  let h = small_hist () in
  Alcotest.(check bool) "empty mean nan" true (Float.is_nan (Histogram.mean h));
  Alcotest.(check bool) "empty p50 nan" true
    (Float.is_nan (Histogram.percentile h 50.));
  Histogram.observe h 3.0;
  Histogram.reset h;
  Alcotest.(check int) "reset count" 0 (Histogram.count h);
  Alcotest.(check bool) "reset mean nan" true (Float.is_nan (Histogram.mean h))

let test_hist_invalid () =
  (match Histogram.create ~lo:0.0 ~name:"x" () with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "lo <= 0 accepted");
  match Histogram.create ~growth:1.0 ~name:"x" () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "growth <= 1 accepted"

(* --- Tracer --- *)

let test_tracer_wraparound () =
  let tr = Tracer.create ~capacity:4 () in
  for i = 0 to 5 do
    Tracer.record tr ~at:(float_of_int i) Tracer.Emc_hit
  done;
  Alcotest.(check int) "length capped" 4 (Tracer.length tr);
  Alcotest.(check int) "dropped" 2 (Tracer.dropped tr);
  Alcotest.(check int) "total" 6 (Tracer.total tr);
  Alcotest.(check (list (float 1e-9))) "oldest-first tail" [ 2.; 3.; 4.; 5. ]
    (List.map (fun e -> e.Tracer.at) (Tracer.to_list tr))

let test_tracer_counts_by_kind () =
  let tr = Tracer.create ~capacity:16 () in
  Tracer.record tr ~at:0. Tracer.Emc_hit;
  Tracer.record tr ~at:1. (Tracer.Upcall { slow_probes = 2 });
  Tracer.record tr ~at:2. Tracer.Emc_hit;
  Tracer.record tr ~at:3. (Tracer.Mask_created { n_masks = 1 });
  Alcotest.(check (list (pair string int))) "sorted tallies"
    [ ("emc_hit", 2); ("mask_created", 1); ("upcall", 1) ]
    (Tracer.counts_by_kind tr)

(* --- Scrape under the sim engine --- *)

let test_scrape_schedule_every () =
  let s = Scrape.create () in
  let v = ref 0.0 in
  Scrape.register s ~name:"v" (fun () -> !v);
  let e = Pi_sim.Engine.create () in
  Pi_sim.Engine.schedule_every e ~start:0. ~period:1. ~until:5. (fun e ->
      v := !v +. 1.0;
      Scrape.tick s ~now:(Pi_sim.Engine.now e));
  Pi_sim.Engine.run e;
  match Scrape.series s "v" with
  | None -> Alcotest.fail "series missing"
  | Some ts ->
    Alcotest.(check (list (pair (float 1e-9) (float 1e-9))))
      "one sample per engine tick"
      [ (0., 1.); (1., 2.); (2., 3.); (3., 4.); (4., 5.) ]
      (Pi_telemetry.Timeseries.to_list ts)

let test_scrape_duplicate_rejected () =
  let s = Scrape.create () in
  Scrape.register s ~name:"x" (fun () -> 0.);
  match Scrape.register s ~name:"x" (fun () -> 1.) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "duplicate source accepted"

(* --- Metrics registry --- *)

let test_metrics_get_or_create () =
  let m = Metrics.create () in
  let c1 = Metrics.counter m "hits" in
  let c2 = Metrics.counter m "hits" in
  Metrics.incr c1;
  Metrics.incr ~by:2 c2;
  Alcotest.(check int) "shared instrument" 3 (Metrics.counter_value c1);
  Alcotest.(check (list (pair string int))) "enumeration" [ ("hits", 3) ]
    (Metrics.counters m)

let test_metrics_type_mismatch () =
  let m = Metrics.create () in
  ignore (Metrics.counter m "x");
  match Metrics.gauge m "x" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "counter reused as gauge"

(* --- JSON snapshot stability --- *)

let fill order m =
  List.iter
    (fun name -> ignore (Metrics.counter m name))
    order;
  Metrics.incr ~by:7 (Metrics.counter m "b");
  Metrics.incr ~by:1 (Metrics.counter m "a");
  Metrics.set (Metrics.gauge m "g") 2.5;
  Histogram.observe (Metrics.histogram m "h") 3.0

let test_json_stable_across_insertion_order () =
  let m1 = Metrics.create () and m2 = Metrics.create () in
  fill [ "a"; "b" ] m1;
  fill [ "b"; "a" ] m2;
  Alcotest.(check string) "byte-identical snapshots"
    (Export.json_snapshot m1) (Export.json_snapshot m2)

let test_json_shape () =
  let m = Metrics.create () in
  fill [ "a"; "b" ] m;
  let s = Scrape.create () in
  Scrape.register s ~name:"n_masks" (fun () -> 4.);
  Scrape.tick s ~now:0.;
  let tr = Tracer.create ~capacity:8 () in
  Tracer.record tr ~at:0. Tracer.Emc_hit;
  let j = Export.json_snapshot ~scrape:s ~tracer:tr m in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "snapshot contains %S" needle) true
        (Astring_like.contains j needle))
    [ {|"counters":{"a":1,"b":7}|};
      {|"gauges":{"g":2.5}|};
      {|"p50":3|};
      {|"timeseries":{"n_masks":[[0,4]]}|};
      {|"trace":|};
      {|"emc_hit":1|} ];
  Alcotest.(check bool) "newline-terminated" true
    (String.length j > 0 && j.[String.length j - 1] = '\n')

(* --- Datapath integration --- *)

let mk_dp ?metrics ?tracer () =
  let open Pi_ovs in
  let config = { Datapath.default_config with Datapath.emc_insert_inv_prob = 1 } in
  let telemetry = Pi_telemetry.Ctx.v ?metrics ?tracer () in
  let dp = Datapath.create ~config ~telemetry (Pi_pkt.Prng.create 3L) () in
  Datapath.install_rules dp
    [ Pi_classifier.Rule.make ~priority:100
        ~pattern:
          (Pi_classifier.Pattern.with_ip_src Pi_classifier.Pattern.any
             (pfx "10.0.0.10/32"))
        ~action:(Action.Output 2) ();
      Pi_classifier.Rule.make ~priority:1 ~pattern:Pi_classifier.Pattern.any
        ~action:Action.Drop () ];
  dp

let drive dp =
  let open Pi_ovs in
  (* upcall, then emc hit, then a second flow: upcall + megaflow traffic *)
  let f1 = Pi_classifier.Flow.make ~ip_src:(ip "10.0.0.10") () in
  let f2 = Pi_classifier.Flow.make ~ip_src:(ip "99.0.0.1") () in
  ignore (Datapath.process dp ~now:0.0 f1 ~pkt_len:100);
  ignore (Datapath.process dp ~now:0.1 f1 ~pkt_len:100);
  ignore (Datapath.process dp ~now:0.2 f2 ~pkt_len:100);
  ignore (Datapath.process dp ~now:0.3 f2 ~pkt_len:100)

let test_datapath_counters_match () =
  let open Pi_ovs in
  let metrics = Metrics.create () in
  let dp = mk_dp ~metrics () in
  drive dp;
  let c name = Option.value ~default:(-1) (Metrics.find_counter metrics name) in
  Alcotest.(check int) "packets" 4 (c "packets");
  Alcotest.(check int) "upcall counter = n_upcalls" (Datapath.n_upcalls dp)
    (c "upcall");
  Alcotest.(check int) "mask_created = n_masks" (Datapath.n_masks dp)
    (c "mask_created");
  Alcotest.(check int) "per-stage counters partition the packets" 4
    (c "emc_hit" + c "mf_hit" + c "upcall");
  (match Metrics.find_histogram metrics "cycles_per_packet" with
   | None -> Alcotest.fail "cycles histogram missing"
   | Some h ->
     Alcotest.(check int) "one cycles sample per packet" 4 (Histogram.count h);
     Alcotest.(check (float 1e-6)) "histogram sum = cycles_used"
       (Datapath.cycles_used dp) (Histogram.sum h))

let test_datapath_trace_events () =
  let open Pi_ovs in
  let metrics = Metrics.create () in
  let tracer = Tracer.create ~capacity:64 () in
  let dp = mk_dp ~metrics ~tracer () in
  drive dp;
  (* Policy change; revalidation evicts the now-stale megaflows. *)
  Datapath.install_rules dp
    [ Pi_classifier.Rule.make ~priority:50
        ~pattern:(Pi_classifier.Pattern.with_tp_dst Pi_classifier.Pattern.any 80)
        ~action:Action.Drop () ];
  let evicted = Datapath.revalidate dp ~now:1. in
  Alcotest.(check bool) "something evicted" true (evicted > 0);
  Alcotest.(check (option int)) "megaflow_evicted counter" (Some evicted)
    (Metrics.find_counter metrics "megaflow_evicted");
  let tally = Tracer.counts_by_kind tracer in
  let count k = Option.value ~default:0 (List.assoc_opt k tally) in
  Alcotest.(check int) "upcall events" (Datapath.n_upcalls dp) (count "upcall");
  Alcotest.(check bool) "emc_hit traced" true (count "emc_hit" > 0);
  Alcotest.(check bool) "mask_created traced" true (count "mask_created" > 0);
  Alcotest.(check int) "revalidate traced" 1 (count "revalidate");
  Alcotest.(check int) "eviction traced" 1 (count "megaflow_evicted")

let test_disabled_telemetry_no_behavior_change () =
  let open Pi_ovs in
  let run ?metrics ?tracer () =
    let dp = mk_dp ?metrics ?tracer () in
    let rng = Pi_pkt.Prng.create 42L in
    let actions = ref [] in
    for i = 0 to 199 do
      let f = Pi_classifier.Flow.make ~ip_src:(Pi_pkt.Prng.int32 rng)
          ~tp_dst:(i land 0x3F) () in
      let a, _ = Datapath.process dp ~now:(0.01 *. float_of_int i) f ~pkt_len:64 in
      actions := a :: !actions
    done;
    ignore (Datapath.revalidate dp ~now:10.);
    (!actions, Datapath.cycles_used dp, Datapath.n_masks dp,
     Datapath.n_megaflows dp, Datapath.n_upcalls dp)
  in
  let bare = run () in
  let instrumented =
    run ~metrics:(Metrics.create ()) ~tracer:(Tracer.create ()) ()
  in
  let (a1, cy1, m1, g1, u1) = bare and (a2, cy2, m2, g2, u2) = instrumented in
  Alcotest.(check (list action_t)) "same verdicts" a1 a2;
  Alcotest.(check (float 0.0)) "same cycles" cy1 cy2;
  Alcotest.(check int) "same masks" m1 m2;
  Alcotest.(check int) "same megaflows" g1 g2;
  Alcotest.(check int) "same upcalls" u1 u2

let suite =
  [ Alcotest.test_case "histogram bucket boundaries" `Quick test_hist_bucket_boundaries;
    Alcotest.test_case "histogram exact stats" `Quick test_hist_exact_stats;
    Alcotest.test_case "histogram percentiles" `Quick test_hist_percentiles;
    Alcotest.test_case "histogram single value exact" `Quick test_hist_single_value_exact;
    Alcotest.test_case "histogram empty + reset" `Quick test_hist_empty_and_reset;
    Alcotest.test_case "histogram invalid args" `Quick test_hist_invalid;
    Alcotest.test_case "tracer wraparound" `Quick test_tracer_wraparound;
    Alcotest.test_case "tracer counts by kind" `Quick test_tracer_counts_by_kind;
    Alcotest.test_case "scrape under schedule_every" `Quick test_scrape_schedule_every;
    Alcotest.test_case "scrape duplicate rejected" `Quick test_scrape_duplicate_rejected;
    Alcotest.test_case "metrics get-or-create" `Quick test_metrics_get_or_create;
    Alcotest.test_case "metrics type mismatch" `Quick test_metrics_type_mismatch;
    Alcotest.test_case "json stable across insertion order" `Quick
      test_json_stable_across_insertion_order;
    Alcotest.test_case "json shape" `Quick test_json_shape;
    Alcotest.test_case "datapath counters match stats" `Quick test_datapath_counters_match;
    Alcotest.test_case "datapath trace events" `Quick test_datapath_trace_events;
    Alcotest.test_case "disabled telemetry: no behavior change" `Quick
      test_disabled_telemetry_no_behavior_change ]
