open Pi_sim
open Policy_injection

(* Scaled-down scenarios so the suite stays fast; the full Fig. 3
   parameters run in bench/main.exe. *)
let small_params ?attack () =
  { Scenario.default_params with
    Scenario.duration = 30.;
    victim_flows = 500;
    victim_samples_per_tick = 100;
    attack }

let small_attack variant =
  { Scenario.default_attack with
    Scenario.variant;
    start = 10.;
    refresh_period = 2.;
    attacker_exact_per_tick = 32 }

let test_no_attack_baseline () =
  let r = Scenario.run (small_params ()) in
  Alcotest.(check (float 1e-6)) "full offered throughput" 1.0
    r.Scenario.pre_attack_mean_gbps;
  Alcotest.(check bool)
    (Printf.sprintf "the usual handful of masks (got %d)" r.Scenario.peak_masks)
    true
    (r.Scenario.peak_masks >= 2 && r.Scenario.peak_masks <= 40);
  List.iter
    (fun s ->
      if s.Scenario.loss > 1e-9 then Alcotest.fail "loss without attack")
    r.Scenario.samples;
  Alcotest.(check int) "series mirror the samples"
    (List.length r.Scenario.samples)
    (Timeseries.length r.Scenario.throughput_series);
  Alcotest.(check (float 1e-9)) "series mean matches report"
    r.Scenario.pre_attack_mean_gbps
    (Timeseries.mean_between r.Scenario.throughput_series ~lo:0. ~hi:1e9)

let test_src_dport_attack () =
  let r =
    Scenario.run (small_params ~attack:(small_attack Variant.Src_dport) ())
  in
  (* Co-resident services' whitelists perturb the shared tries, so a
     busy host yields slightly fewer than the clean-room 512 masks. *)
  Alcotest.(check bool)
    (Printf.sprintf "masks reach ~512 (got %d)" r.Scenario.peak_masks)
    true
    (r.Scenario.peak_masks >= 512 * 85 / 100);
  (* Victim forwarding cost must have exploded even if the offered load
     still fits the remaining CPU. *)
  let cpp_pre =
    List.filter_map
      (fun s ->
        if s.Scenario.time < 10. then Some s.Scenario.victim_cycles_per_pkt
        else None)
      r.Scenario.samples
  and cpp_post =
    List.filter_map
      (fun s ->
        if s.Scenario.time >= 15. then Some s.Scenario.victim_cycles_per_pkt
        else None)
      r.Scenario.samples
  in
  let mean l = List.fold_left ( +. ) 0. l /. float_of_int (List.length l) in
  Alcotest.(check bool) "per-packet cost grew >5x" true
    (mean cpp_post > 5. *. mean cpp_pre)

let test_full_attack_collapses () =
  let r =
    Scenario.run (small_params ~attack:(small_attack Variant.Src_sport_dport) ())
  in
  Alcotest.(check bool)
    (Printf.sprintf "masks reach ~8192 (got %d)" r.Scenario.peak_masks)
    true
    (r.Scenario.peak_masks >= 8192 * 85 / 100);
  Alcotest.(check bool)
    (Printf.sprintf "throughput collapses below 20%% (got %.3f)"
       r.Scenario.post_attack_mean_gbps)
    true
    (r.Scenario.post_attack_mean_gbps < 0.2 *. r.Scenario.pre_attack_mean_gbps)

let test_attack_stop_recovers_masks () =
  let attack =
    { (small_attack Variant.Src_only) with Scenario.stop = Some 15. }
  in
  let r = Scenario.run (small_params ~attack ()) in
  (* Megaflows idle out within the 10 s timeout after the stream stops. *)
  match List.rev r.Scenario.samples with
  | last :: _ ->
    (* The 32 attack masks idle out; what survives is the victim's own
       handful of megaflow shapes. *)
    Alcotest.(check bool)
      (Printf.sprintf "masks decay after stop (got %d, peak %d)"
         last.Scenario.n_masks r.Scenario.peak_masks)
      true
      (last.Scenario.n_masks * 2 < r.Scenario.peak_masks)
  | [] -> Alcotest.fail "no samples"

let test_mitigated_scenario () =
  (* Coarsened un-wildcarding keeps the same attack harmless. *)
  let dc =
    { Scenario.default_params.Scenario.datapath_config with
      Pi_ovs.Datapath.megaflow_transform =
        Some (Pi_mitigation.Heuristics.round_up_prefix ~granularity:8) }
  in
  let p =
    { (small_params ~attack:(small_attack Variant.Src_sport_dport) ()) with
      Scenario.datapath_config = dc }
  in
  let r = Scenario.run p in
  Alcotest.(check bool)
    (Printf.sprintf "masks bounded (got %d)" r.Scenario.peak_masks)
    true
    (r.Scenario.peak_masks <= 64);
  Alcotest.(check bool)
    (Printf.sprintf "throughput preserved (got %.3f)"
       r.Scenario.post_attack_mean_gbps)
    true
    (r.Scenario.post_attack_mean_gbps > 0.8 *. r.Scenario.pre_attack_mean_gbps)

let test_attribution_names_the_attacker () =
  (* Fig. 3 with provenance on: attacker pod (tenant 3) plus the victim
     and 8 background tenants all share the host — attribution must rank
     the attacker #1 by induced masks, and a detector alarm fed the top
     suspect must carry its port and offending rules. *)
  let p =
    { (small_params ~attack:(small_attack Variant.Src_dport) ()) with
      Scenario.provenance = true }
  in
  let r = Scenario.run p in
  let summary =
    match r.Scenario.attribution with
    | Some s -> s
    | None -> Alcotest.fail "provenance on but no attribution report"
  in
  let suspect =
    match Pi_ovs.Provenance.top_suspect summary with
    | Some row -> row
    | None -> Alcotest.fail "no suspect under an active attack"
  in
  Alcotest.(check int) "attacker tenant ranked #1" 3
    suspect.Pi_ovs.Provenance.t_tenant;
  (match summary.Pi_ovs.Provenance.rows with
   | _ :: runner_up :: _ ->
     Alcotest.(check bool) "attacker dominates the mask count" true
       (suspect.Pi_ovs.Provenance.t_masks
        > 10 * max 1 runner_up.Pi_ovs.Provenance.t_masks)
   | _ -> Alcotest.fail "benign tenants missing from the report");
  Alcotest.(check (list Alcotest.int)) "covert stream entered on the uplink"
    [ 1 ] suspect.Pi_ovs.Provenance.t_ports;
  Alcotest.(check bool) "offending ACL rule ids recorded" true
    (suspect.Pi_ovs.Provenance.t_rules <> []);
  let det = Pi_mitigation.Detector.create () in
  let alarm =
    match
      Pi_mitigation.Detector.observe det ~now:p.Scenario.duration ~suspect
        ~n_masks:r.Scenario.peak_masks ~avg_probes:1. ()
    with
    | Some a -> a
    | None -> Alcotest.fail "peak mask count must raise an alarm"
  in
  match alarm.Pi_mitigation.Detector.suspect with
  | Some s ->
    Alcotest.(check int) "alarm names the tenant" 3 s.Pi_ovs.Provenance.t_tenant;
    Alcotest.(check (list Alcotest.int)) "alarm carries the port ids" [ 1 ]
      s.Pi_ovs.Provenance.t_ports;
    Alcotest.(check bool) "alarm carries the rule ids" true
      (List.for_all
         (fun (rs : Pi_ovs.Provenance.rule_share) ->
           rs.Pi_ovs.Provenance.r_rule >= 0)
         s.Pi_ovs.Provenance.t_rules
       && s.Pi_ovs.Provenance.t_rules <> [])
  | None -> Alcotest.fail "alarm lost its suspect"

let test_provenance_parity () =
  (* Turning provenance on must not move a single sample: same masks,
     same throughput, same final stats. *)
  let p = small_params ~attack:(small_attack Variant.Src_only) () in
  let off = Scenario.run p
  and on = Scenario.run { p with Scenario.provenance = true } in
  List.iter2
    (fun (x : Scenario.sample) (y : Scenario.sample) ->
      if x.Scenario.victim_gbps <> y.Scenario.victim_gbps
         || x.Scenario.n_masks <> y.Scenario.n_masks
         || x.Scenario.n_megaflows <> y.Scenario.n_megaflows
         || x.Scenario.victim_cycles_per_pkt <> y.Scenario.victim_cycles_per_pkt
      then Alcotest.failf "provenance changed t=%.1f" x.Scenario.time)
    off.Scenario.samples on.Scenario.samples;
  Alcotest.(check int) "same final upcalls"
    off.Scenario.final_stats.Pi_ovs.Dataplane.upcalls
    on.Scenario.final_stats.Pi_ovs.Dataplane.upcalls;
  Alcotest.(check (float 1e-9)) "same final cycles"
    off.Scenario.final_stats.Pi_ovs.Dataplane.cycles
    on.Scenario.final_stats.Pi_ovs.Dataplane.cycles

let test_deterministic () =
  let p = small_params ~attack:(small_attack Variant.Src_only) () in
  let a = Scenario.run p and b = Scenario.run p in
  Alcotest.(check int) "same sample count"
    (List.length a.Scenario.samples) (List.length b.Scenario.samples);
  List.iter2
    (fun (x : Scenario.sample) (y : Scenario.sample) ->
      if x.Scenario.victim_gbps <> y.Scenario.victim_gbps
         || x.Scenario.n_masks <> y.Scenario.n_masks then
        Alcotest.failf "samples diverge at t=%.1f" x.Scenario.time)
    a.Scenario.samples b.Scenario.samples

let suite =
  [ Alcotest.test_case "no-attack baseline" `Slow test_no_attack_baseline;
    Alcotest.test_case "src+dport raises victim cost" `Slow test_src_dport_attack;
    Alcotest.test_case "full attack collapses victim" `Slow test_full_attack_collapses;
    Alcotest.test_case "masks decay after attack stops" `Slow test_attack_stop_recovers_masks;
    Alcotest.test_case "coarsening mitigation holds" `Slow test_mitigated_scenario;
    Alcotest.test_case "attribution names the attacker" `Slow
      test_attribution_names_the_attacker;
    Alcotest.test_case "provenance on/off parity" `Slow test_provenance_parity;
    Alcotest.test_case "deterministic given the seed" `Slow test_deterministic ]
