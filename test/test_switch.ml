open Pi_ovs
open Pi_classifier
open Helpers

let mk () =
  let sw = Switch.create ~name:"sw0" (Pi_pkt.Prng.create 4L) () in
  let up = Switch.add_port sw ~name:"uplink" in
  let pod = Switch.add_port sw ~name:"pod" in
  Switch.install_rules sw
    [ Rule.make ~priority:100
        ~pattern:(Pattern.with_ip_src Pattern.any (pfx "10.0.0.0/8"))
        ~action:(Action.Output pod.Switch.id) ();
      Rule.make ~priority:1 ~pattern:Pattern.any ~action:Action.Drop () ];
  (sw, up, pod)

let test_port_ids_dense () =
  let sw, up, pod = mk () in
  Alcotest.(check int) "uplink id" 1 up.Switch.id;
  Alcotest.(check int) "pod id" 2 pod.Switch.id;
  Alcotest.(check int) "two ports" 2 (List.length (Switch.ports sw))

let test_port_by_name () =
  let sw, _, pod = mk () in
  (match Switch.port_by_name sw "pod" with
   | Some p -> Alcotest.(check int) "found" pod.Switch.id p.Switch.id
   | None -> Alcotest.fail "port not found");
  Alcotest.(check bool) "missing is None" true (Switch.port_by_name sw "nope" = None)

let test_forwarding_and_stats () =
  let sw, up, pod = mk () in
  let pkt =
    Pi_pkt.Packet.udp ~src:(ip "10.0.0.1") ~dst:(ip "10.1.0.2") ~src_port:1000
      ~dst_port:80 ()
  in
  let action, _ = Switch.process_packet sw ~now:0. ~in_port:up.Switch.id pkt in
  Alcotest.(check action_t) "forwarded" (Action.Output pod.Switch.id) action;
  let s_up = Switch.port_stats_exn sw up.Switch.id in
  let s_pod = Switch.port_stats_exn sw pod.Switch.id in
  Alcotest.(check int) "rx on uplink" 1 s_up.Switch.rx_packets;
  Alcotest.(check int) "tx on pod" 1 s_pod.Switch.tx_packets;
  Alcotest.(check int) "bytes counted" (Pi_pkt.Packet.size pkt) s_pod.Switch.tx_bytes

let test_drop_stats () =
  let sw, up, _ = mk () in
  let pkt =
    Pi_pkt.Packet.udp ~src:(ip "99.0.0.1") ~dst:(ip "10.1.0.2") ~src_port:1
      ~dst_port:2 ()
  in
  let action, _ = Switch.process_packet sw ~now:0. ~in_port:up.Switch.id pkt in
  Alcotest.(check action_t) "dropped" Action.Drop action;
  Alcotest.(check int) "drop counted" 1
    (Switch.port_stats_exn sw up.Switch.id).Switch.dropped

let test_unknown_port_stats () =
  let sw, _, _ = mk () in
  Alcotest.(check bool) "opt is None" true (Switch.port_stats_opt sw 99 = None);
  match Switch.port_stats_exn sw 99 with
  | exception Switch.Unknown_port 99 -> ()
  | _ -> Alcotest.fail "expected Unknown_port"

let test_revalidate_passthrough () =
  let sw, up, _ = mk () in
  let pkt =
    Pi_pkt.Packet.udp ~src:(ip "10.0.0.1") ~dst:(ip "10.1.0.2") ~src_port:1
      ~dst_port:2 ()
  in
  ignore (Switch.process_packet sw ~now:0. ~in_port:up.Switch.id pkt);
  Alcotest.(check int) "idle flow expires" 1 (Switch.revalidate sw ~now:1000.)

let suite =
  [ Alcotest.test_case "dense port ids" `Quick test_port_ids_dense;
    Alcotest.test_case "port by name" `Quick test_port_by_name;
    Alcotest.test_case "forwarding and stats" `Quick test_forwarding_and_stats;
    Alcotest.test_case "drop stats" `Quick test_drop_stats;
    Alcotest.test_case "unknown port stats" `Quick test_unknown_port_stats;
    Alcotest.test_case "revalidate" `Quick test_revalidate_passthrough ]
