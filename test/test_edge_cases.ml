(* Cross-cutting edge cases that don't belong to one module's suite. *)

open Pi_classifier
open Helpers

(* --- Rule precedence laws --- *)

let gen_rule =
  QCheck2.Gen.(
    let* priority = int_range 0 5 in
    return (Rule.make ~priority ~pattern:Pattern.any ~action:() ()))

let prop_precedence_total_order =
  qtest "precedence is a strict total order"
    QCheck2.Gen.(triple gen_rule gen_rule gen_rule)
    (fun (a, b, c) ->
      let lt x y = Rule.compare_precedence x y < 0 in
      (* antisymmetry on distinct rules (seq numbers are unique) *)
      (lt a b <> lt b a || Rule.compare_precedence a b = 0)
      (* transitivity *)
      && ((not (lt a b && lt b c)) || lt a c))

let prop_wins_consistent =
  qtest "wins agrees with compare" QCheck2.Gen.(pair gen_rule gen_rule)
    (fun (a, b) -> Rule.wins a b = (Rule.compare_precedence a b < 0))

(* --- Mask.Builder --- *)

let test_builder_accumulates () =
  let b = Mask.Builder.create () in
  Mask.Builder.add_prefix b Field.Ip_src 8;
  Mask.Builder.add_exact b Field.Tp_dst;
  Mask.Builder.add_mask b (Mask.with_prefix Mask.empty Field.Ip_src 16);
  let m = Mask.Builder.freeze b in
  Alcotest.(check (option int)) "widest prefix wins" (Some 16)
    (Mask.prefix_len m Field.Ip_src);
  Alcotest.(check (option int)) "exact port" (Some 16)
    (Mask.prefix_len m Field.Tp_dst)

let test_builder_freeze_isolated () =
  let b = Mask.Builder.create () in
  Mask.Builder.add_exact b Field.Ip_src;
  let m1 = Mask.Builder.freeze b in
  Mask.Builder.add_exact b Field.Tp_dst;
  Alcotest.(check int) "frozen mask unaffected by later adds" 0
    (Mask.get m1 Field.Tp_dst)

(* --- Trie at the full immediate-int width --- *)

let test_trie_width_max () =
  let w = 62 in
  let top = 1 lsl (w - 1) in
  let t = Trie.create ~width:w in
  Trie.insert t ~value:top ~len:w;  (* top bit set *)
  Alcotest.(check bool) "member" true (Trie.mem t ~value:top ~len:w);
  let r = Trie.lookup t top in
  Alcotest.(check int) "full match" w (Trie.longest_match r);
  let r' = Trie.lookup t 0 in
  Alcotest.(check int) "MSB divergence" 1 r'.Trie.checked;
  Alcotest.(check int) "one complement prefix per depth" w
    (List.length (Trie.complement t))

let trie_width_cases =
  [ check_raises_invalid "trie width 0" (fun () -> Trie.create ~width:0);
    check_raises_invalid "trie width 63" (fun () -> Trie.create ~width:63) ]

(* --- Compile: entry-level dst narrows the policy scope --- *)

let test_compile_entry_dst_override () =
  let acl =
    Pi_cms.Acl.whitelist [ Pi_cms.Acl.entry ~dst:(pfx "10.1.0.2/32") () ]
  in
  let rules =
    Pi_cms.Compile.compile ~dst:(pfx "10.1.0.0/24")
      ~allow:(Pi_ovs.Action.Output 1) acl
  in
  match rules with
  | [ allow_rule; catch_all ] ->
    Alcotest.(check ipv4_t) "entry dst wins inside the scope"
      (ip "10.1.0.2")
      (Flow.ip_dst allow_rule.Rule.pattern.Pattern.key);
    Alcotest.(check (option int)) "catch-all keeps policy scope" (Some 24)
      (Mask.prefix_len catch_all.Rule.pattern.Pattern.mask Field.Ip_dst)
  | l -> Alcotest.failf "expected 2 rules, got %d" (List.length l)

let test_compile_priorities_descend () =
  let acl =
    Pi_cms.Acl.whitelist
      [ Pi_cms.Acl.entry ~src:(pfx "10.0.0.0/8") ();
        Pi_cms.Acl.entry ~src:(pfx "11.0.0.0/8") () ]
  in
  let rules = Pi_cms.Compile.compile ~allow:(Pi_ovs.Action.Output 1) acl in
  let prios = List.map (fun r -> r.Rule.priority) rules in
  Alcotest.(check (list int)) "descending, catch-all last"
    [ Pi_cms.Compile.base_priority; Pi_cms.Compile.base_priority - 1;
      Pi_cms.Compile.default_priority ]
    prios

(* --- Traffic pool corner cases --- *)

let test_flow_pool_host_net () =
  let rng = Pi_pkt.Prng.create 6L in
  let pool =
    Pi_pkt.Traffic.Flow_pool.create rng ~n_flows:10
      ~src_net:(pfx "10.0.0.7/32") ~dst_net:(pfx "10.1.0.2/32") ()
  in
  Pi_pkt.Traffic.Flow_pool.iter
    (fun f ->
      Alcotest.(check ipv4_t) "host net pins the source" (ip "10.0.0.7")
        f.Pi_pkt.Traffic.src)
    pool

(* --- K8s block_prefixes cover property --- *)

let prop_block_prefixes_cover =
  qtest ~count:200 "ipBlock except semantics"
    QCheck2.Gen.(
      let* cidr_len = int_range 0 16 in
      let* base = map Int32.of_int int in
      let cidr = Pi_pkt.Ipv4_addr.Prefix.make base cidr_len in
      let* except_lens = list_size (int_range 0 3) (int_range cidr_len 32) in
      let* probes = list_size (return 20) (map Int32.of_int int) in
      return (cidr, except_lens, probes))
    (fun (cidr, except_lens, probes) ->
      (* Build excepts inside the cidr. *)
      let except =
        List.mapi
          (fun i len ->
            Pi_pkt.Ipv4_addr.Prefix.make
              (Pi_pkt.Ipv4_addr.add cidr.Pi_pkt.Ipv4_addr.Prefix.base (i * 7))
              len)
          except_lens
      in
      let block = { Pi_cms.K8s_policy.cidr; except } in
      let cover =
        List.map
          (fun (v, l) -> Pi_pkt.Ipv4_addr.Prefix.make v l)
          (Pi_cms.K8s_policy.block_prefixes block)
      in
      List.for_all
        (fun a ->
          (* Clamp the probe into the cidr so it is informative. *)
          let a =
            Int32.logor cidr.Pi_pkt.Ipv4_addr.Prefix.base
              (Int32.logand a
                 (Int32.lognot (Pi_pkt.Ipv4_addr.mask_of_len cidr.Pi_pkt.Ipv4_addr.Prefix.len)))
          in
          let in_cover = List.exists (Pi_pkt.Ipv4_addr.Prefix.mem a) cover in
          let in_except = List.exists (Pi_pkt.Ipv4_addr.Prefix.mem a) except in
          in_cover = not in_except)
        probes)

(* --- Switch: forwarding to an unknown port still accounts rx --- *)

let test_switch_output_unknown_port () =
  let sw = Pi_ovs.Switch.create ~name:"s" (Pi_pkt.Prng.create 2L) () in
  let p1 = Pi_ovs.Switch.add_port sw ~name:"in" in
  Pi_ovs.Switch.install_rules sw
    [ Rule.make ~pattern:Pattern.any ~action:(Pi_ovs.Action.Output 99) () ];
  let f = Flow.make ~in_port:p1.Pi_ovs.Switch.id () in
  let action, _ = Pi_ovs.Switch.process_flow sw ~now:0. f ~pkt_len:50 in
  Alcotest.(check action_t) "action preserved" (Pi_ovs.Action.Output 99) action;
  Alcotest.(check int) "rx accounted" 1
    (Pi_ovs.Switch.port_stats_exn sw p1.Pi_ovs.Switch.id).Pi_ovs.Switch.rx_packets

(* --- Campaign pacing gap --- *)

let test_campaign_even_pacing () =
  let gen =
    Policy_injection.Packet_gen.make
      ~spec:(Policy_injection.Policy_gen.default_spec
               ~variant:Policy_injection.Variant.Src_only
               ~allow_src:(ip "10.0.0.10") ())
      ~dst:(ip "10.1.0.3") ()
  in
  let c =
    Policy_injection.Campaign.make ~refresh_period:4. ~gen ~start:0. ~stop:4. ()
  in
  let times = List.map fst (List.of_seq (Policy_injection.Campaign.events c)) in
  let rec gaps = function
    | a :: (b :: _ as rest) -> (b -. a) :: gaps rest
    | _ -> []
  in
  List.iter
    (fun g ->
      if abs_float (g -. (4. /. 32.)) > 1e-9 then
        Alcotest.failf "uneven pacing: gap %f" g)
    (gaps times)

let suite =
  [ prop_precedence_total_order;
    prop_wins_consistent;
    Alcotest.test_case "mask builder accumulates" `Quick test_builder_accumulates;
    Alcotest.test_case "mask builder freeze isolation" `Quick test_builder_freeze_isolated;
    Alcotest.test_case "trie at max width" `Quick test_trie_width_max;
  ]
  @ trie_width_cases
  @ [
    Alcotest.test_case "compile: entry dst override" `Quick test_compile_entry_dst_override;
    Alcotest.test_case "compile: priorities descend" `Quick test_compile_priorities_descend;
    Alcotest.test_case "flow pool host net" `Quick test_flow_pool_host_net;
    prop_block_prefixes_cover;
    Alcotest.test_case "switch output to unknown port" `Quick test_switch_output_unknown_port;
    Alcotest.test_case "campaign even pacing" `Quick test_campaign_even_pacing ]
