open Pi_mitigation
open Pi_classifier
open Helpers

(* --- Heuristics --- *)

let test_round_up_prefix () =
  let m = Mask.with_prefix Mask.empty Field.Ip_src 13 in
  let m' = Heuristics.round_up_prefix ~granularity:8 m in
  Alcotest.(check (option int)) "13 -> 16" (Some 16)
    (Mask.prefix_len m' Field.Ip_src)

let test_round_up_capped_at_width () =
  let m = Mask.with_prefix Mask.empty Field.Tp_dst 15 in
  let m' = Heuristics.round_up_prefix ~granularity:8 m in
  Alcotest.(check (option int)) "15 -> 16 (width)" (Some 16)
    (Mask.prefix_len m' Field.Tp_dst)

let test_round_up_leaves_scattered () =
  let m = Mask.with_field Mask.empty Field.Ip_src 0xFF00FF00 in
  let m' = Heuristics.round_up_prefix ~granularity:8 m in
  Alcotest.(check int) "scattered untouched" 0xFF00FF00
    (Mask.get m' Field.Ip_src)

let test_round_up_soundness () =
  (* Narrowing only: the result must be a superset of the input bits. *)
  let m =
    Mask.with_prefix (Mask.with_prefix Mask.empty Field.Ip_src 5) Field.Tp_dst 3
  in
  Alcotest.(check bool) "superset" true
    (Mask.is_subset m (Heuristics.round_up_prefix ~granularity:8 m))

let test_exact_fields () =
  let m = Mask.with_prefix Mask.empty Field.Ip_src 3 in
  let m' = Heuristics.exact_fields ~fields:[ Field.Ip_src; Field.Tp_dst ] m in
  Alcotest.(check (option int)) "touched field forced exact" (Some 32)
    (Mask.prefix_len m' Field.Ip_src);
  Alcotest.(check int) "untouched field stays wildcarded" 0
    (Mask.get m' Field.Tp_dst)

let test_max_masks_per_field () =
  Alcotest.(check int) "32/8" 5 (Heuristics.max_masks_per_field 32 ~granularity:8);
  Alcotest.(check int) "16/8" 3 (Heuristics.max_masks_per_field 16 ~granularity:8);
  Alcotest.(check int) "32/1" 33 (Heuristics.max_masks_per_field 32 ~granularity:1)

(* Attack under the coarsening mitigation: the 512-mask variant must be
   bounded by the rounded combinations. *)
let attack_masks ~config =
  let open Policy_injection in
  let spec =
    Policy_gen.default_spec ~variant:Variant.Src_dport
      ~allow_src:(ip "10.0.0.10") ()
  in
  let dp = Pi_ovs.Datapath.create ~config (Pi_pkt.Prng.create 5L) () in
  Pi_ovs.Datapath.install_rules dp
    (Pi_cms.Compile.compile ~allow:(Pi_ovs.Action.Output 2)
       (Policy_gen.acl spec));
  let gen = Packet_gen.make ~spec ~dst:(ip "10.1.0.3") () in
  List.iter
    (fun f -> ignore (Pi_ovs.Datapath.process dp ~now:0. f ~pkt_len:100))
    (Packet_gen.flows gen);
  Pi_ovs.Datapath.n_masks dp

let test_coarsening_bounds_attack () =
  let config =
    { Pi_ovs.Datapath.default_config with
      Pi_ovs.Datapath.megaflow_transform =
        Some (Heuristics.round_up_prefix ~granularity:8) }
  in
  let n = attack_masks ~config in
  Alcotest.(check bool)
    (Printf.sprintf "bounded by 4*2 combinations (got %d)" n)
    true (n <= 16);
  (* Sanity: without the mitigation the same drive yields 512+. *)
  let n0 = attack_masks ~config:Pi_ovs.Datapath.default_config in
  Alcotest.(check bool) "unmitigated explodes" true (n0 >= 512)

let test_mask_limit_bounds_attack () =
  let config =
    { Pi_ovs.Datapath.default_config with Pi_ovs.Datapath.mask_limit = Some 32 }
  in
  let n = attack_masks ~config in
  Alcotest.(check bool) (Printf.sprintf "capped (got %d)" n) true (n <= 33)

(* --- Cacheless baseline --- *)

let test_cacheless_verdicts () =
  let c = Cacheless.create () in
  Cacheless.install_rules c
    [ Rule.make ~priority:100
        ~pattern:(Pattern.with_ip_src Pattern.any (pfx "10.0.0.0/8"))
        ~action:(Pi_ovs.Action.Output 1) ();
      Rule.make ~priority:1 ~pattern:Pattern.any ~action:Pi_ovs.Action.Drop () ];
  let a, _ = Cacheless.process c (Flow.make ~ip_src:(ip "10.1.1.1") ()) ~pkt_len:100 in
  let d, _ = Cacheless.process c (Flow.make ~ip_src:(ip "11.1.1.1") ()) ~pkt_len:100 in
  Alcotest.(check action_t) "allowed" (Pi_ovs.Action.Output 1) a;
  Alcotest.(check action_t) "denied" Pi_ovs.Action.Drop d;
  Alcotest.(check int) "counted" 2 (Cacheless.n_processed c)

let test_cacheless_attack_independent () =
  (* The defining property: adversarial traffic cannot change the
     per-packet cost, because there is no cache state to poison. *)
  let open Policy_injection in
  let spec =
    Policy_gen.default_spec ~variant:Variant.Src_dport
      ~allow_src:(ip "10.0.0.10") ()
  in
  let c = Cacheless.create () in
  Cacheless.install_rules c
    (Pi_cms.Compile.compile ~allow:(Pi_ovs.Action.Output 2)
       (Policy_gen.acl spec));
  let victim = Flow.make ~ip_src:(ip "10.0.0.10") ~ip_proto:17 ~tp_src:53 ~tp_dst:80 () in
  let _, before = Cacheless.process c victim ~pkt_len:100 in
  let gen = Packet_gen.make ~spec ~dst:(ip "10.1.0.3") () in
  List.iter
    (fun f -> ignore (Cacheless.process c f ~pkt_len:100))
    (Packet_gen.flows gen);
  let _, after = Cacheless.process c victim ~pkt_len:100 in
  Alcotest.(check int) "probe count unchanged by the attack"
    before.Pi_ovs.Cost_model.mf_probes after.Pi_ovs.Cost_model.mf_probes;
  Alcotest.(check int) "subtables bounded by rule masks" 2
    (Cacheless.n_subtables c)

let test_cacheless_remove () =
  let c = Cacheless.create () in
  Cacheless.install_rules c
    [ Rule.make ~pattern:Pattern.any ~action:Pi_ovs.Action.Drop () ];
  Alcotest.(check int) "removed" 1 (Cacheless.remove_rules c (fun _ -> true));
  let a, _ = Cacheless.process c (Flow.make ()) ~pkt_len:10 in
  Alcotest.(check action_t) "default drop on empty" Pi_ovs.Action.Drop a

let test_cacheless_dtree_engine () =
  let open Policy_injection in
  let spec =
    Policy_gen.default_spec ~variant:Variant.Src_dport
      ~allow_src:(ip "10.0.0.10") ()
  in
  let rules =
    Pi_cms.Compile.compile ~allow:(Pi_ovs.Action.Output 2) (Policy_gen.acl spec)
  in
  let c = Cacheless.create ~engine:(Cacheless.Dtree_engine 2) () in
  Cacheless.install_rules c rules;
  (* Verdicts match the reference semantics... *)
  let acl = Policy_gen.acl spec in
  let rng = Pi_pkt.Prng.create 12L in
  for _ = 1 to 200 do
    let f =
      Flow.make ~ip_src:(Pi_pkt.Prng.int32 rng) ~ip_proto:17
        ~tp_src:(Pi_pkt.Prng.int rng 65536) ~tp_dst:(Pi_pkt.Prng.int rng 65536) ()
    in
    let expected =
      match Pi_cms.Acl.eval acl (Pi_cms.Acl.five_tuple_of_flow f) with
      | Pi_cms.Acl.Allow -> Pi_ovs.Action.Output 2
      | Pi_cms.Acl.Deny -> Pi_ovs.Action.Drop
    in
    let got, _ = Cacheless.process c f ~pkt_len:100 in
    if not (Pi_ovs.Action.equal got expected) then
      Alcotest.fail "dtree engine diverged from ACL semantics"
  done;
  (* ...and the attack still cannot move the cost. *)
  let victim =
    Flow.make ~ip_src:(ip "10.0.0.10") ~ip_proto:17 ~tp_src:53 ~tp_dst:80 ()
  in
  let _, before = Cacheless.process c victim ~pkt_len:100 in
  let gen = Packet_gen.make ~spec ~dst:(ip "10.1.0.3") () in
  List.iter (fun f -> ignore (Cacheless.process c f ~pkt_len:100))
    (Packet_gen.flows gen);
  let _, after = Cacheless.process c victim ~pkt_len:100 in
  Alcotest.(check int) "work unchanged by the attack"
    before.Pi_ovs.Cost_model.mf_probes after.Pi_ovs.Cost_model.mf_probes

let test_cacheless_dtree_remove_recompiles () =
  let c = Cacheless.create ~engine:(Cacheless.Dtree_engine 2) () in
  Cacheless.install_rules c
    [ Rule.make ~priority:5 ~pattern:(Pattern.with_tp_dst Pattern.any 80)
        ~action:(Pi_ovs.Action.Output 1) ();
      Rule.make ~priority:1 ~pattern:Pattern.any ~action:Pi_ovs.Action.Drop () ];
  let f = Flow.make ~tp_dst:80 () in
  let a1, _ = Cacheless.process c f ~pkt_len:10 in
  Alcotest.(check action_t) "allowed" (Pi_ovs.Action.Output 1) a1;
  Alcotest.(check int) "one removed" 1
    (Cacheless.remove_rules c (fun r -> r.Rule.priority = 5));
  let a2, _ = Cacheless.process c f ~pkt_len:10 in
  Alcotest.(check action_t) "recompiled: now denied" Pi_ovs.Action.Drop a2

(* --- Detector --- *)

let test_detector_mask_threshold () =
  let d = Detector.create ~mask_threshold:100 () in
  Alcotest.(check bool) "quiet below" true
    (Detector.observe d ~now:1. ~n_masks:50 ~avg_probes:2. () = None);
  Alcotest.(check bool) "alarms above" true
    (Detector.observe d ~now:2. ~n_masks:150 ~avg_probes:2. () <> None);
  Alcotest.(check bool) "triggered" true (Detector.triggered d)

let test_detector_burst () =
  let d = Detector.create ~mask_threshold:10_000 ~growth_threshold:64 () in
  ignore (Detector.observe d ~now:1. ~n_masks:10 ~avg_probes:2. ());
  match Detector.observe d ~now:2. ~n_masks:500 ~avg_probes:2. () with
  | Some a -> Alcotest.(check bool) "burst reason" true
                (String.length a.Detector.reason > 0)
  | None -> Alcotest.fail "burst not detected"

let test_detector_probes () =
  let d = Detector.create ~mask_threshold:10_000 ~growth_threshold:10_000 ~probes_threshold:32. () in
  Alcotest.(check bool) "probes alarm" true
    (Detector.observe d ~now:1. ~n_masks:10 ~avg_probes:100. () <> None)

let test_detector_suspect_masks () =
  (* Drive a real attack, then ask the detector who did it. *)
  let open Policy_injection in
  let spec =
    Policy_gen.default_spec ~variant:Variant.Src_only
      ~allow_src:(ip "10.0.0.10") ()
  in
  let dp = Pi_ovs.Datapath.create (Pi_pkt.Prng.create 6L) () in
  Pi_ovs.Datapath.install_rules dp
    (Pi_cms.Compile.compile ~allow:(Pi_ovs.Action.Output 2)
       (Policy_gen.acl spec));
  let gen = Packet_gen.make ~spec ~dst:(ip "10.1.0.3") () in
  List.iter
    (fun f -> ignore (Pi_ovs.Datapath.process dp ~now:0. f ~pkt_len:100))
    (Packet_gen.flows gen);
  (* Busy benign flow: many packets through one megaflow. *)
  let benign = Flow.make ~ip_src:(ip "10.0.0.10") () in
  for _ = 1 to 200 do
    ignore (Pi_ovs.Datapath.process dp ~now:0. benign ~pkt_len:100)
  done;
  let suspects = Detector.suspect_masks (Pi_ovs.Datapath.megaflow dp) in
  Alcotest.(check bool)
    (Printf.sprintf "most attack masks flagged (got %d)" (List.length suspects))
    true
    (List.length suspects >= 30);
  (* The busy allow megaflow must not be flagged. *)
  (* The allow-side megaflow is the one that pins eth_type as well as
     the whole source (a depth-32 deny megaflow pins only ip_src). *)
  let allow_mask =
    List.find
      (fun m ->
        Mask.prefix_len m Field.Ip_src = Some 32
        && Mask.get m Field.Eth_type <> 0)
      (Pi_ovs.Megaflow.masks (Pi_ovs.Datapath.megaflow dp))
  in
  Alcotest.(check bool) "benign mask not flagged" false
    (List.exists (Mask.equal allow_mask) suspects)

let suite =
  [ Alcotest.test_case "round_up_prefix" `Quick test_round_up_prefix;
    Alcotest.test_case "round up capped at width" `Quick test_round_up_capped_at_width;
    Alcotest.test_case "scattered masks untouched" `Quick test_round_up_leaves_scattered;
    Alcotest.test_case "rounding is narrowing" `Quick test_round_up_soundness;
    Alcotest.test_case "exact_fields" `Quick test_exact_fields;
    Alcotest.test_case "max_masks_per_field" `Quick test_max_masks_per_field;
    Alcotest.test_case "coarsening bounds the attack" `Quick test_coarsening_bounds_attack;
    Alcotest.test_case "mask limit bounds the attack" `Quick test_mask_limit_bounds_attack;
    Alcotest.test_case "cacheless verdicts" `Quick test_cacheless_verdicts;
    Alcotest.test_case "cacheless is attack-independent" `Quick test_cacheless_attack_independent;
    Alcotest.test_case "cacheless remove" `Quick test_cacheless_remove;
    Alcotest.test_case "cacheless dtree engine" `Quick test_cacheless_dtree_engine;
    Alcotest.test_case "dtree engine recompiles on remove" `Quick
      test_cacheless_dtree_remove_recompiles;
    Alcotest.test_case "detector mask threshold" `Quick test_detector_mask_threshold;
    Alcotest.test_case "detector burst" `Quick test_detector_burst;
    Alcotest.test_case "detector probes" `Quick test_detector_probes;
    Alcotest.test_case "detector suspects the attack masks" `Quick test_detector_suspect_masks ]
