(* Golden-file tests: the export formats are a contract. BENCH_*.json
   artifacts and CI diffs rely on Export.json_snapshot being byte-stable
   and on the text report's line shapes; any change here is a format
   break and must be deliberate. *)

open Pi_telemetry

(* A small fixed registry + tracer. The tracer ring holds 2 events and
   records 3, so the retained tallies ([by_kind]) have lost the first
   event while the cumulative ones ([by_kind_total]) have not — pinning
   the wrap-around-safe counting. *)
let fixture () =
  let m = Metrics.create () in
  Metrics.incr ~by:4 (Metrics.counter m "packets");
  Metrics.incr ~by:2 (Metrics.counter m "emc_hit");
  Metrics.incr (Metrics.counter m "mf_hit");
  Metrics.incr (Metrics.counter m "upcall");
  Metrics.incr ~by:3 (Metrics.counter m "mask_created");
  Metrics.incr ~by:7 (Metrics.counter m "mf_probes");
  Metrics.set (Metrics.gauge m "n_masks") 2.;
  Metrics.set (Metrics.gauge m "n_megaflows") 3.;
  let h = Metrics.histogram m "cycles_per_packet" in
  Histogram.observe h 100.;
  Histogram.observe h 300.;
  let tr = Tracer.create ~capacity:2 () in
  Tracer.record tr ~at:0.1 Tracer.Emc_hit;
  Tracer.record tr ~at:0.2 (Tracer.Mf_hit { probes = 2 });
  Tracer.record tr ~at:0.3 (Tracer.Upcall { slow_probes = 1 });
  (m, tr)

let golden_json =
  "{\"counters\":{\"emc_hit\":2,\"mask_created\":3,\"mf_hit\":1,\"mf_probes\":7,\
   \"packets\":4,\"upcall\":1},\"gauges\":{\"n_masks\":2,\"n_megaflows\":3},\
   \"histograms\":{\"cycles_per_packet\":{\"count\":2,\"mean\":200,\"min\":100,\
   \"max\":300,\"p50\":128,\"p99\":300}},\"trace\":{\"capacity\":2,\
   \"recorded\":3,\"dropped\":1,\"by_kind\":{\"mf_hit\":1,\"upcall\":1},\
   \"by_kind_total\":{\"emc_hit\":1,\"mf_hit\":1,\"upcall\":1}}}\n"

let golden_text =
  "lookups: hit:3 missed:1 lost:0\n\
   masks: current:2 created-total:3 hit/pkt:1.75\n\
   counters:\n\
  \  emc_hit: 2\n\
  \  mask_created: 3\n\
  \  mf_hit: 1\n\
  \  mf_probes: 7\n\
  \  packets: 4\n\
  \  upcall: 1\n\
   gauges:\n\
  \  n_masks: 2\n\
  \  n_megaflows: 3\n\
   histograms:\n\
  \  cycles_per_packet: count:2 mean:200.0 min:100.0 max:300.0 p50:128.0 p99:300.0\n\
   trace: 3 recorded, 2 retained, 1 dropped\n\
  \  emc_hit: 1 (retained 0)\n\
  \  mf_hit: 1 (retained 1)\n\
  \  upcall: 1 (retained 1)\n"

let test_json_snapshot () =
  let m, tr = fixture () in
  Alcotest.(check string) "byte-for-byte" golden_json
    (Export.json_snapshot ~tracer:tr m)

let test_text_report () =
  let m, tr = fixture () in
  Alcotest.(check string) "byte-for-byte" golden_text
    (Export.text_report ~tracer:tr m)

let test_text_report_no_gauge () =
  (* Without a live n_masks gauge the current count is unknowable from
     counters alone — the report must say so, not echo the cumulative. *)
  let m = Metrics.create () in
  Metrics.incr ~by:5 (Metrics.counter m "mask_created");
  let r = Export.text_report m in
  Alcotest.(check bool) "current unknown" true
    (Helpers.Astring_like.contains r "masks: current:? created-total:5")

let test_extra_sections () =
  let m, _ = fixture () in
  let j =
    Export.json_snapshot
      ~extra:[ ("attribution", {|{"tenants":[],"ports":[]}|}) ] m
  in
  let suffix = {|,"attribution":{"tenants":[],"ports":[]}}|} ^ "\n" in
  Alcotest.(check bool) "extra section appended verbatim" true
    (String.length j > String.length suffix
     && String.sub j (String.length j - String.length suffix)
          (String.length suffix)
        = suffix)

let suite =
  [ Alcotest.test_case "json snapshot golden" `Quick test_json_snapshot;
    Alcotest.test_case "text report golden" `Quick test_text_report;
    Alcotest.test_case "text report without n_masks gauge" `Quick
      test_text_report_no_gauge;
    Alcotest.test_case "extra json sections" `Quick test_extra_sections ]
