(* Conformance suite for the Dataplane interface: every backend —
   Datapath, Pmd, and the cache-less mitigation baseline — must honour
   the same contract (classification, accounting, revalidation, shard
   hooks), differing only in whether it has caches to account for.
   Plus regression tests for the bounded upcall queue. *)

open Pi_ovs
open Pi_classifier
open Helpers

(* The whitelist-ACL rule set of the paper's running example: allow one
   /32 source, drop the rest. *)
let rules =
  [ Rule.make ~priority:100
      ~pattern:(Pattern.with_ip_src Pattern.any (pfx "10.0.0.10/32"))
      ~action:(Action.Output 2) ();
    Rule.make ~priority:1 ~pattern:Pattern.any ~action:Action.Drop () ]

let trusted = Flow.make ~ip_src:(ip "10.0.0.10") ()

(* Adversarial sources diverging from the trusted /32 at depth [k] — the
   covert stream that mints one mask per divergence depth. *)
let covert k =
  let src = Int32.logxor (Pi_pkt.Ipv4_addr.of_string "10.0.0.10")
      (Int32.shift_left 1l (31 - k)) in
  Flow.make ~ip_src:src ()

module type CASE = sig
  val label : string
  val backend : unit -> Dataplane.backend

  val cached : bool
  (** Backend has EMC/megaflow caches and a slow path to account for;
      [false] for the cache-less baseline, whose cache counters must all
      read 0. *)
end

module Conformance (C : CASE) = struct
  let mk ?telemetry ?provenance () =
    let dp =
      Dataplane.create ?telemetry ?provenance (C.backend ())
        (Pi_pkt.Prng.create 7L)
    in
    Dataplane.install_rules dp rules;
    dp

  let test_classify_and_account () =
    let dp = mk () in
    let action, _ = Dataplane.process dp ~now:0. trusted ~pkt_len:100 in
    Alcotest.(check action_t) "trusted allowed" (Action.Output 2) action;
    let action, _ = Dataplane.process dp ~now:0. (covert 5) ~pkt_len:100 in
    Alcotest.(check action_t) "covert dropped" Action.Drop action;
    let st = Dataplane.stats dp in
    Alcotest.(check int) "packets counted" 2 st.Dataplane.packets;
    if C.cached then begin
      Alcotest.(check int) "both packets upcalled" 2 st.Dataplane.upcalls;
      Alcotest.(check bool) "megaflows installed" true (st.Dataplane.megaflows >= 1);
      Alcotest.(check bool) "masks minted" true (st.Dataplane.masks >= 1)
    end
    else begin
      Alcotest.(check int) "no upcalls without a slow path" 0 st.Dataplane.upcalls;
      Alcotest.(check int) "no megaflow cache" 0 st.Dataplane.megaflows;
      Alcotest.(check int) "no masks" 0 st.Dataplane.masks
    end;
    Alcotest.(check bool) "cycles charged" true (st.Dataplane.cycles > 0.);
    Alcotest.(check (float 1e-9)) "cycles_used = stats.cycles"
      st.Dataplane.cycles (Dataplane.cycles_used dp)

  let test_burst_alignment () =
    let dp = mk () in
    let pkts = [| (trusted, 100); (covert 3, 64); (trusted, 1500) |] in
    let rs = Dataplane.process_burst dp ~now:0. pkts in
    Alcotest.(check int) "one result per packet" 3 (Array.length rs);
    Alcotest.(check action_t) "r0" (Action.Output 2) (fst rs.(0));
    Alcotest.(check action_t) "r1" Action.Drop (fst rs.(1));
    Alcotest.(check action_t) "r2" (Action.Output 2) (fst rs.(2));
    Alcotest.(check int) "burst counted" 3 (Dataplane.stats dp).Dataplane.packets

  let test_batch_columns () =
    (* The batch entry point proper: results land in the Batch's own
       columns, the length is untouched, and a refilled batch can be
       reused. *)
    let dp = mk () in
    let b = Batch.create ~capacity:8 in
    Batch.push b trusted ~pkt_len:100;
    Batch.push b (covert 3) ~pkt_len:64;
    Batch.push b trusted ~pkt_len:1500;
    Dataplane.process_batch dp b ~now:0.;
    Alcotest.(check int) "length untouched" 3 (Batch.length b);
    Alcotest.(check action_t) "r0" (Action.Output 2) (Batch.action b 0);
    Alcotest.(check action_t) "r1" Action.Drop (Batch.action b 1);
    Alcotest.(check action_t) "r2" (Action.Output 2) (Batch.action b 2);
    let o = Batch.outcome b 2 in
    (* Cached backends serve the repeat flow from EMC/megaflow; the
       cache-less baseline re-walks its classifier every time (priced as
       [mf_hit] with the walk's probe count) but never upcalls twice. *)
    if C.cached then
      Alcotest.(check bool) "repeat flow served from a cache" true
        (o.Cost_model.emc_hit || o.Cost_model.mf_hit)
    else Alcotest.(check bool) "no upcall on repeat" false o.Cost_model.upcall;
    Alcotest.(check int) "pkt_len in the outcome" 1500 o.Cost_model.pkt_len;
    Alcotest.(check int) "batch counted" 3
      (Dataplane.stats dp).Dataplane.packets;
    (* Reuse: clear + refill is the rx-ring pattern the API is for. *)
    Batch.clear b;
    Batch.push b (covert 7) ~pkt_len:100;
    Dataplane.process_batch dp b ~now:0.1;
    Alcotest.(check action_t) "reused batch classifies" Action.Drop
      (Batch.action b 0);
    Alcotest.(check int) "running total" 4
      (Dataplane.stats dp).Dataplane.packets

  let test_rule_change_takes_effect () =
    let dp = mk () in
    ignore (Dataplane.process dp ~now:0. trusted ~pkt_len:100);
    (* A higher-priority override: stale cached verdicts must not
       survive the revalidation that follows the policy change. *)
    Dataplane.install_rules dp
      [ Rule.make ~priority:200 ~pattern:Pattern.any ~action:Action.Drop () ];
    ignore (Dataplane.revalidate dp ~now:1.);
    let action, _ = Dataplane.process dp ~now:1.1 trusted ~pkt_len:100 in
    Alcotest.(check action_t) "override wins after revalidate" Action.Drop action

  let test_remove_rules () =
    let dp = mk () in
    let removed =
      Dataplane.remove_rules dp (fun r ->
          Action.equal r.Rule.action (Action.Output 2))
    in
    Alcotest.(check int) "one rule removed" 1 removed;
    ignore (Dataplane.revalidate dp ~now:0.5);
    let action, _ = Dataplane.process dp ~now:1. trusted ~pkt_len:100 in
    Alcotest.(check action_t) "whitelist entry gone" Action.Drop action

  let test_mask_monotone_under_attack () =
    (* The covert stream only ever adds mask shapes between
       revalidations; the per-step count must be non-decreasing, and for
       cached backends the attack must actually grow it. *)
    let dp = mk () in
    ignore (Dataplane.process dp ~now:0. trusted ~pkt_len:100);
    let start = (Dataplane.stats dp).Dataplane.masks in
    let prev = ref start in
    for k = 0 to 31 do
      ignore (Dataplane.process dp ~now:0.1 (covert k) ~pkt_len:100);
      let m = (Dataplane.stats dp).Dataplane.masks in
      Alcotest.(check bool) "mask count non-decreasing" true (m >= !prev);
      prev := m
    done;
    if C.cached then
      Alcotest.(check bool) "attack mints masks" true (!prev > start)
    else Alcotest.(check int) "immune: still no masks" 0 !prev;
    let sum = Array.fold_left ( + ) 0 (Dataplane.shard_masks dp) in
    Alcotest.(check int) "shard_masks sums to stats.masks" !prev sum

  let test_shard_hooks () =
    let dp = mk () in
    let n = Dataplane.n_shards dp in
    Alcotest.(check bool) "at least one shard" true (n >= 1);
    Alcotest.(check int) "shard_masks length" n
      (Array.length (Dataplane.shard_masks dp));
    Alcotest.(check int) "shard_cycles length" n
      (Array.length (Dataplane.shard_cycles dp));
    for k = 0 to 7 do
      let s = Dataplane.shard_of dp (covert k) in
      Alcotest.(check bool) "shard_of in range" true (s >= 0 && s < n)
    done;
    (* Without telemetry, no shard reports a registry. *)
    Alcotest.(check bool) "no metrics when telemetry off" true
      (Dataplane.shard_metrics dp 0 = None);
    match Dataplane.shard_metrics dp n with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "shard_metrics out of range must raise"

  let test_service_and_reset () =
    let dp = mk () in
    ignore (Dataplane.process dp ~now:0. trusted ~pkt_len:100);
    (* Default configs are synchronous: nothing pending to service. *)
    Alcotest.(check int) "no deferred upcalls by default" 0
      (Dataplane.service_upcalls dp ~now:0.5);
    Alcotest.(check int) "nothing pending" 0
      (Dataplane.stats dp).Dataplane.pending_upcalls;
    Dataplane.reset_stats dp;
    let st = Dataplane.stats dp in
    Alcotest.(check int) "packets reset" 0 st.Dataplane.packets;
    Alcotest.(check (float 0.)) "cycles reset" 0. st.Dataplane.cycles

  let test_telemetry_roundtrip () =
    let ctx = Pi_telemetry.Ctx.v ~metrics:(Pi_telemetry.Metrics.create ()) () in
    let dp = mk ~telemetry:ctx () in
    Alcotest.(check bool) "ctx carries metrics" true
      (Pi_telemetry.Ctx.metrics (Dataplane.telemetry dp) <> None)

  let drive dp =
    Array.init 17 (fun i ->
        let f = if i = 0 then trusted else covert (i - 1) in
        fst (Dataplane.process dp ~now:(float_of_int i *. 0.01) f ~pkt_len:100))

  let test_provenance_off_parity () =
    (* Attaching a provenance registry must not change what the
       dataplane does — same verdicts, same counters, same cycles. *)
    let reg = Provenance.registry () in
    Provenance.bind reg ~tenant:2 rules;
    let plain = mk () and attributed = mk ~provenance:reg () in
    let a = drive plain and b = drive attributed in
    Array.iteri
      (fun i action ->
        Alcotest.(check action_t) (Printf.sprintf "action %d" i) action b.(i))
      a;
    let sp = Dataplane.stats plain and sa = Dataplane.stats attributed in
    Alcotest.(check int) "packets" sp.Dataplane.packets sa.Dataplane.packets;
    Alcotest.(check int) "upcalls" sp.Dataplane.upcalls sa.Dataplane.upcalls;
    Alcotest.(check int) "masks" sp.Dataplane.masks sa.Dataplane.masks;
    Alcotest.(check int) "megaflows" sp.Dataplane.megaflows sa.Dataplane.megaflows;
    Alcotest.(check (float 1e-9)) "cycles" sp.Dataplane.cycles sa.Dataplane.cycles

  let test_provenance_attribution () =
    let reg = Provenance.registry () in
    Provenance.bind reg ~tenant:2 rules;
    let dp = mk ~provenance:reg () in
    ignore (drive dp);
    let summary = Dataplane.attribution dp in
    if C.cached then begin
      Alcotest.(check bool) "one store per shard" true
        (List.length (Dataplane.provenance dp) = Dataplane.n_shards dp);
      match summary.Provenance.rows with
      | row :: _ ->
        Alcotest.(check int) "upcalls attributed to the bound tenant" 2
          row.Provenance.t_tenant;
        Alcotest.(check bool) "masks attributed" true (row.Provenance.t_masks > 0);
        Alcotest.(check bool) "offending rules recorded" true
          (row.Provenance.t_rules <> [])
      | [] -> Alcotest.fail "cached backend produced no attribution rows"
    end
    else begin
      Alcotest.(check int) "no stores without caches" 0
        (List.length (Dataplane.provenance dp));
      Alcotest.(check bool) "empty summary" true (summary.Provenance.rows = [])
    end

  let test_introspection_hooks () =
    let dp = mk () in
    ignore (drive dp);
    let n = Dataplane.n_shards dp in
    let flows = ref 0 and stat_entries = ref 0 in
    for s = 0 to n - 1 do
      flows := !flows + List.length (Dataplane.shard_flows dp s);
      List.iter
        (fun ms ->
          stat_entries := !stat_entries + ms.Megaflow.ms_entries;
          if ms.Megaflow.ms_entries > 0 then begin
            Alcotest.(check bool) "flat table has headroom" true
              (ms.Megaflow.ms_capacity > ms.Megaflow.ms_entries);
            Alcotest.(check bool) "probe stats sane" true
              (ms.Megaflow.ms_max_probe >= 1 && ms.Megaflow.ms_mean_probe >= 1.)
          end)
        (Dataplane.shard_mask_stats dp s)
    done;
    (* dump-masks surfaces the flat-table health per subtable. *)
    (if (Dataplane.stats dp).Dataplane.masks > 0 then
       let text = Format.asprintf "%a" Dpctl.dump_masks dp in
       Alcotest.(check bool) "dump-masks reports occupancy" true
         (Astring_like.contains text "occupancy:");
       Alcotest.(check bool) "dump-masks reports probe length" true
         (Astring_like.contains text "probe-len:"));
    let st = Dataplane.stats dp in
    Alcotest.(check int) "shard_flows covers every megaflow"
      st.Dataplane.megaflows !flows;
    Alcotest.(check int) "mask stats cover every entry"
      st.Dataplane.megaflows !stat_entries;
    (match Dataplane.shard_flows dp n with
     | exception Invalid_argument _ -> ()
     | _ -> Alcotest.fail "shard_flows out of range must raise");
    match Dataplane.shard_mask_stats dp n with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "shard_mask_stats out of range must raise"

  let suite =
    List.map
      (fun (name, f) -> Alcotest.test_case (C.label ^ ": " ^ name) `Quick f)
      [ ("classify and account", test_classify_and_account);
        ("burst alignment", test_burst_alignment);
        ("batch columns", test_batch_columns);
        ("rule change takes effect", test_rule_change_takes_effect);
        ("remove rules", test_remove_rules);
        ("mask monotonicity under attack", test_mask_monotone_under_attack);
        ("shard hooks", test_shard_hooks);
        ("service and reset", test_service_and_reset);
        ("telemetry roundtrip", test_telemetry_roundtrip);
        ("provenance off = on, minus the report", test_provenance_off_parity);
        ("provenance attribution", test_provenance_attribution);
        ("introspection hooks", test_introspection_hooks) ]
end

module Datapath_case = Conformance (struct
  let label = "datapath"
  let backend () = Dataplane.datapath ()
  let cached = true
end)

module Pmd_case = Conformance (struct
  let label = "pmd-4"
  let backend () =
    Dataplane.pmd ~config:{ Pmd.default_config with Pmd.n_shards = 4 } ()
  let cached = true
end)

module Cacheless_case = Conformance (struct
  let label = "cacheless"
  let backend () = Pi_mitigation.Cacheless.dataplane ()
  let cached = false
end)

(* --- Upcall queue: unit tests --------------------------------------- *)

let test_queue_bounds () =
  let q = Upcall_queue.create (Upcall_queue.bounded 2) in
  Alcotest.(check bool) "push 1" true (Upcall_queue.push q 1);
  Alcotest.(check bool) "push 2" true (Upcall_queue.push q 2);
  Alcotest.(check bool) "push 3 refused" false (Upcall_queue.push q 3);
  Alcotest.(check int) "one drop" 1 (Upcall_queue.drops q);
  Alcotest.(check int) "two queued" 2 (Upcall_queue.length q);
  Alcotest.(check int) "two pushes" 2 (Upcall_queue.pushes q);
  Alcotest.(check (option int)) "fifo pop" (Some 1) (Upcall_queue.pop q);
  Alcotest.(check (option int)) "fifo pop 2" (Some 2) (Upcall_queue.pop q);
  Alcotest.(check (option int)) "empty" None (Upcall_queue.pop q);
  Upcall_queue.reset_stats q;
  Alcotest.(check int) "drops reset" 0 (Upcall_queue.drops q)

let test_queue_config () =
  Alcotest.(check bool) "default is synchronous" true
    (Upcall_queue.synchronous Upcall_queue.default_config);
  Alcotest.(check bool) "bounded is deferred" false
    (Upcall_queue.synchronous (Upcall_queue.bounded 8));
  let q = Upcall_queue.create (Upcall_queue.bounded ~handler_budget:3 8) in
  Alcotest.(check int) "budget" 3 (Upcall_queue.budget q);
  let q' = Upcall_queue.create (Upcall_queue.bounded 8) in
  Alcotest.(check int) "unlimited budget" max_int (Upcall_queue.budget q');
  Alcotest.check_raises "depth must be positive"
    (Invalid_argument "Upcall_queue.bounded: depth") (fun () ->
      ignore (Upcall_queue.bounded 0))

let test_queue_clear () =
  (* Regression: clear used to silently discard pending upcalls — the
     packets vanished from every counter. Each cleared-pending item is a
     missed packet the slow path will never resolve: a drop. *)
  let q = Upcall_queue.create (Upcall_queue.bounded 4) in
  ignore (Upcall_queue.push q 1);
  ignore (Upcall_queue.push q 2);
  Upcall_queue.clear q;
  Alcotest.(check int) "cleared" 0 (Upcall_queue.length q);
  Alcotest.(check int) "cleared-pending items count as drops" 2
    (Upcall_queue.drops q);
  Alcotest.(check bool) "usable after clear" true (Upcall_queue.push q 3);
  Upcall_queue.clear q;
  Alcotest.(check int) "drops accumulate across clears" 3
    (Upcall_queue.drops q)

let test_queue_reset () =
  (* [reset] opens a fresh measurement window: pending items are
     drained (not serviced later, not counted as drops) and the
     counters start from zero. *)
  let q = Upcall_queue.create (Upcall_queue.bounded 2) in
  ignore (Upcall_queue.push q 1);
  ignore (Upcall_queue.push q 2);
  ignore (Upcall_queue.push q 3);
  Alcotest.(check int) "overflow dropped" 1 (Upcall_queue.drops q);
  Upcall_queue.reset q;
  Alcotest.(check int) "pending drained" 0 (Upcall_queue.length q);
  Alcotest.(check int) "drops zeroed, drained items not counted" 0
    (Upcall_queue.drops q);
  Alcotest.(check int) "pushes zeroed" 0 (Upcall_queue.pushes q);
  Alcotest.(check bool) "usable after reset" true (Upcall_queue.push q 4)

(* --- Bounded queue through the datapath ----------------------------- *)

let deferred_backend ?(depth = 4) ?handler_budget () =
  Dataplane.datapath
    ~config:{ Datapath.default_config with
              Datapath.upcall_queue = Upcall_queue.bounded ?handler_budget depth }
    ()

let test_deferred_overflow_drops () =
  (* depth 4, six distinct misses: four queue, two drop on the floor. *)
  let tracer = Pi_telemetry.Tracer.create () in
  let ctx = Pi_telemetry.Ctx.v ~tracer () in
  let dp = Dataplane.create ~telemetry:ctx (deferred_backend ~depth:4 ()) (Pi_pkt.Prng.create 7L) in
  Dataplane.install_rules dp rules;
  for k = 0 to 5 do
    let action, o = Dataplane.process dp ~now:0. (covert k) ~pkt_len:100 in
    Alcotest.(check action_t) "miss defers: packet not forwarded"
      Action.Drop action;
    Alcotest.(check bool) "no inline slow-path classification" false
      o.Cost_model.upcall
  done;
  let st = Dataplane.stats dp in
  Alcotest.(check int) "four pending" 4 st.Dataplane.pending_upcalls;
  Alcotest.(check int) "two dropped" 2 st.Dataplane.upcall_drops;
  Alcotest.(check int) "no megaflows before servicing" 0 st.Dataplane.megaflows;
  let dropped_events =
    List.filter
      (fun e ->
        match e.Pi_telemetry.Tracer.kind with
        | Pi_telemetry.Tracer.Upcall_dropped _ -> true
        | _ -> false)
      (Pi_telemetry.Tracer.to_list tracer)
  in
  Alcotest.(check int) "drops traced" 2 (List.length dropped_events)

let test_deferred_service_budget () =
  let dp =
    Dataplane.create (deferred_backend ~depth:8 ~handler_budget:2 ())
      (Pi_pkt.Prng.create 7L)
  in
  Dataplane.install_rules dp rules;
  for k = 0 to 4 do
    ignore (Dataplane.process dp ~now:0. (covert k) ~pkt_len:100)
  done;
  Alcotest.(check int) "five pending" 5
    (Dataplane.stats dp).Dataplane.pending_upcalls;
  Alcotest.(check int) "budget caps a service round" 2
    (Dataplane.service_upcalls dp ~now:0.5);
  Alcotest.(check int) "three left" 3
    (Dataplane.stats dp).Dataplane.pending_upcalls;
  Alcotest.(check int) "second round" 2 (Dataplane.service_upcalls dp ~now:1.);
  Alcotest.(check int) "drains the tail" 1 (Dataplane.service_upcalls dp ~now:1.5);
  Alcotest.(check int) "empty" 0 (Dataplane.service_upcalls dp ~now:2.);
  let st = Dataplane.stats dp in
  Alcotest.(check int) "all serviced" 0 st.Dataplane.pending_upcalls;
  Alcotest.(check bool) "handler cycles charged beside fast path" true
    (st.Dataplane.handler_cycles > 0.);
  Alcotest.(check bool) "megaflows installed by handlers" true
    (st.Dataplane.megaflows >= 1);
  (* A serviced flow's megaflow is live: its next packet stays on the
     fast path and forwards correctly. *)
  let action, o = Dataplane.process dp ~now:2.1 (covert 0) ~pkt_len:100 in
  Alcotest.(check action_t) "cached verdict" Action.Drop action;
  Alcotest.(check bool) "fast-path hit" true
    (o.Cost_model.emc_hit || o.Cost_model.mf_hit)

let test_deferred_trusted_flow_resolves () =
  (* The whitelisted flow is dropped while unresolved, then forwards
     once a handler installs its megaflow — the wire-visible DoS shape. *)
  let dp = Dataplane.create (deferred_backend ()) (Pi_pkt.Prng.create 7L) in
  Dataplane.install_rules dp rules;
  let a0, _ = Dataplane.process dp ~now:0. trusted ~pkt_len:100 in
  Alcotest.(check action_t) "unresolved: dropped" Action.Drop a0;
  Alcotest.(check int) "serviced" 1 (Dataplane.service_upcalls dp ~now:0.5);
  let a1, _ = Dataplane.process dp ~now:1. trusted ~pkt_len:100 in
  Alcotest.(check action_t) "resolved: forwarded" (Action.Output 2) a1

let test_reset_drains_pending () =
  (* Regression: [reset_stats] used to leave pending upcalls queued, so
     a mid-run reset (the bench measurement-window pattern) attributed
     stale queue work to the next window. Chosen semantics: drain. *)
  let dp = Dataplane.create (deferred_backend ~depth:8 ()) (Pi_pkt.Prng.create 7L) in
  Dataplane.install_rules dp rules;
  for k = 0 to 3 do
    ignore (Dataplane.process dp ~now:0. (covert k) ~pkt_len:100)
  done;
  Alcotest.(check int) "four pending before reset" 4
    (Dataplane.stats dp).Dataplane.pending_upcalls;
  Dataplane.reset_stats dp;
  let st = Dataplane.stats dp in
  Alcotest.(check int) "reset drains pending upcalls" 0
    st.Dataplane.pending_upcalls;
  Alcotest.(check int) "drained items are not drops" 0 st.Dataplane.upcall_drops;
  Alcotest.(check int) "nothing to service in the new window" 0
    (Dataplane.service_upcalls dp ~now:1.);
  Alcotest.(check int) "no stale handler work attributed" 0
    (Dataplane.stats dp).Dataplane.upcalls;
  Alcotest.(check (float 0.)) "no stale handler cycles" 0.
    (Dataplane.stats dp).Dataplane.handler_cycles

let queue_suite =
  [ Alcotest.test_case "queue: bounds and fifo" `Quick test_queue_bounds;
    Alcotest.test_case "queue: config" `Quick test_queue_config;
    Alcotest.test_case "queue: clear" `Quick test_queue_clear;
    Alcotest.test_case "queue: reset" `Quick test_queue_reset;
    Alcotest.test_case "deferred: reset drains pending" `Quick
      test_reset_drains_pending;
    Alcotest.test_case "deferred: overflow drops" `Quick
      test_deferred_overflow_drops;
    Alcotest.test_case "deferred: handler budget" `Quick
      test_deferred_service_budget;
    Alcotest.test_case "deferred: trusted flow resolves" `Quick
      test_deferred_trusted_flow_resolves ]

let suite =
  Datapath_case.suite @ Pmd_case.suite @ Cacheless_case.suite @ queue_suite
