open Pi_ovs

(* --- capacity rounding ---------------------------------------------- *)

let test_capacity_rounding () =
  List.iter
    (fun (req, expect) ->
      let r = Spsc_ring.create ~capacity:req ~dummy:0 in
      Alcotest.(check int)
        (Printf.sprintf "capacity %d rounds to %d" req expect)
        expect (Spsc_ring.capacity r))
    [ (1, 1); (2, 2); (3, 4); (4, 4); (5, 8); (7, 8); (8, 8); (9, 16);
      (1000, 1024); (1024, 1024) ];
  Alcotest.check_raises "capacity 0 rejected"
    (Invalid_argument "Spsc_ring.create: capacity < 1") (fun () ->
      ignore (Spsc_ring.create ~capacity:0 ~dummy:0));
  Alcotest.check_raises "negative capacity rejected"
    (Invalid_argument "Spsc_ring.create: capacity < 1") (fun () ->
      ignore (Spsc_ring.create ~capacity:(-3) ~dummy:0))

(* --- empty / full semantics ----------------------------------------- *)

let test_empty_full () =
  let r = Spsc_ring.create ~capacity:4 ~dummy:(-1) in
  Alcotest.(check bool) "new ring empty" true (Spsc_ring.is_empty r);
  Alcotest.(check bool) "new ring not full" false (Spsc_ring.is_full r);
  Alcotest.(check int) "length 0" 0 (Spsc_ring.length r);
  Alcotest.(check (option int)) "pop on empty" None (Spsc_ring.pop r);
  Alcotest.(check int) "pop_or default on empty" (-99)
    (Spsc_ring.pop_or r ~default:(-99));
  for i = 1 to 4 do
    Alcotest.(check bool) (Printf.sprintf "push %d accepted" i) true
      (Spsc_ring.push r i)
  done;
  Alcotest.(check bool) "full after capacity pushes" true (Spsc_ring.is_full r);
  Alcotest.(check int) "length = capacity" 4 (Spsc_ring.length r);
  Alcotest.(check bool) "push on full refused" false (Spsc_ring.push r 5);
  Alcotest.(check (option int)) "fifo head survives overflow attempt"
    (Some 1) (Spsc_ring.pop r);
  Alcotest.(check bool) "space again after pop" false (Spsc_ring.is_full r);
  Alcotest.(check bool) "push fits again" true (Spsc_ring.push r 5);
  Alcotest.(check (option int)) "order kept" (Some 2) (Spsc_ring.pop r)

(* --- wraparound: FIFO order across many index wraps ------------------ *)

let test_wraparound () =
  let r = Spsc_ring.create ~capacity:4 ~dummy:(-1) in
  let next_out = ref 0 in
  (* Staggered push/pop so head and tail cross the slot-array boundary
     dozens of times; order must stay exactly FIFO throughout. *)
  for i = 0 to 199 do
    Alcotest.(check bool) "push" true (Spsc_ring.push r i);
    if i mod 3 <> 0 then begin
      Alcotest.(check (option int)) "fifo across wrap" (Some !next_out)
        (Spsc_ring.pop r);
      incr next_out
    end;
    (* drain a little extra whenever we are about to overflow *)
    while Spsc_ring.is_full r do
      Alcotest.(check (option int)) "fifo while draining" (Some !next_out)
        (Spsc_ring.pop r);
      incr next_out
    done
  done;
  let rec drain () =
    match Spsc_ring.pop r with
    | Some v ->
      Alcotest.(check int) "fifo tail" !next_out v;
      incr next_out;
      drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check int) "every pushed item popped exactly once" 200 !next_out;
  Alcotest.(check bool) "empty at the end" true (Spsc_ring.is_empty r)

(* --- popped slots drop their references ------------------------------ *)

let test_slot_clearing () =
  (* After a pop, the slot must hold the dummy again — the ring never
     retains the last reference to a consumed (heap-allocated) item.
     Observable via pop_or's default on the emptied ring. *)
  let r = Spsc_ring.create ~capacity:2 ~dummy:None in
  Alcotest.(check bool) "push" true (Spsc_ring.push r (Some "x"));
  (match Spsc_ring.pop_or r ~default:None with
   | Some s -> Alcotest.(check string) "payload" "x" s
   | None -> Alcotest.fail "lost the payload");
  Alcotest.(check bool) "empty" true (Spsc_ring.is_empty r);
  (match Spsc_ring.pop_or r ~default:None with
   | None -> ()
   | Some _ -> Alcotest.fail "emptied slot still holds a value")

(* --- producer / consumer across two domains -------------------------- *)

let test_two_domains () =
  let n = 20_000 in
  let r = Spsc_ring.create ~capacity:64 ~dummy:(-1) in
  let consumer =
    Domain.spawn (fun () ->
        let sum = ref 0 and got = ref 0 and ok = ref true in
        while !got < n do
          match Spsc_ring.pop_or r ~default:(-1) with
          | -1 -> Domain.cpu_relax ()
          | v ->
            (* items must arrive in push order: 0,1,2,... *)
            if v <> !got then ok := false;
            sum := !sum + v;
            incr got
        done;
        (!ok, !sum))
  in
  for i = 0 to n - 1 do
    while not (Spsc_ring.push r i) do
      Domain.cpu_relax ()
    done
  done;
  let ok, sum = Domain.join consumer in
  Alcotest.(check bool) "in-order delivery across domains" true ok;
  Alcotest.(check int) "no item lost or duplicated" (n * (n - 1) / 2) sum;
  Alcotest.(check bool) "ring drained" true (Spsc_ring.is_empty r)

let suite =
  [ Alcotest.test_case "capacity rounds to powers of two" `Quick
      test_capacity_rounding;
    Alcotest.test_case "empty/full semantics" `Quick test_empty_full;
    Alcotest.test_case "wraparound keeps FIFO order" `Quick test_wraparound;
    Alcotest.test_case "popped slots drop references" `Quick
      test_slot_clearing;
    Alcotest.test_case "producer/consumer across domains" `Quick
      test_two_domains ]
