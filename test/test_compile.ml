open Pi_cms
open Pi_classifier
open Helpers

let test_range_prefixes_exact () =
  Alcotest.(check (list (pair int int))) "single port" [ (80, 16) ]
    (Compile.range_prefixes 80 80)

let test_range_prefixes_aligned () =
  Alcotest.(check (list (pair int int))) "aligned block" [ (1024, 6) ]
    (Compile.range_prefixes 1024 2047)

let test_range_prefixes_full () =
  Alcotest.(check (list (pair int int))) "all ports" [ (0, 0) ]
    (Compile.range_prefixes 0 65535)

let test_range_prefixes_invalid () =
  (match Compile.range_prefixes 10 5 with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "inverted range should raise");
  match Compile.range_prefixes 0 70000 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "out of range should raise"

let covers_range prefixes p =
  List.exists
    (fun (v, len) ->
      let shift = 16 - len in
      v lsr shift = p lsr shift)
    prefixes

let prop_range_cover =
  qtest ~count:300 "range prefixes cover exactly the range"
    QCheck2.Gen.(
      let* lo = int_range 0 65535 in
      let* hi = int_range lo 65535 in
      return (lo, hi))
    (fun (lo, hi) ->
      let ps = Compile.range_prefixes lo hi in
      (* Probe the edges and a few interior/exterior points. *)
      let inside = [ lo; hi; (lo + hi) / 2 ] in
      let outside =
        List.filter (fun p -> p >= 0 && p <= 65535) [ lo - 1; hi + 1 ]
      in
      List.for_all (fun p -> covers_range ps p) inside
      && List.for_all (fun p -> not (covers_range ps p)) outside)

let prop_range_disjoint =
  qtest ~count:200 "range prefixes are disjoint"
    QCheck2.Gen.(
      let* lo = int_range 0 65535 in
      let* hi = int_range lo 65535 in
      return (lo, hi))
    (fun (lo, hi) ->
      let ps = Compile.range_prefixes lo hi in
      let rec pairs = function
        | [] -> true
        | (v1, l1) :: rest ->
          List.for_all
            (fun (v2, l2) ->
              let l = min l1 l2 in
              let shift = 16 - l in
              v1 lsr shift <> v2 lsr shift)
            rest
          && pairs rest
      in
      pairs ps)

let test_proto_expansion () =
  (* A port filter without a protocol expands over TCP and UDP. *)
  let pats =
    Compile.patterns_of_entry (Acl.entry ~dst_port:(Acl.Port 80) ())
  in
  Alcotest.(check int) "two patterns" 2 (List.length pats);
  let protos =
    List.map (fun p -> Flow.ip_proto p.Pattern.key) pats |> List.sort compare
  in
  Alcotest.(check (list int)) "tcp+udp" [ 6; 17 ] protos

let test_icmp_ignores_ports () =
  let pats =
    Compile.patterns_of_entry
      (Acl.entry ~proto:Acl.Icmp ~dst_port:(Acl.Port 80) ())
  in
  Alcotest.(check int) "one pattern" 1 (List.length pats);
  match pats with
  | [ p ] ->
    Alcotest.(check int) "ports not matched" 0
      (Mask.get p.Pattern.mask Field.Tp_dst)
  | _ -> Alcotest.fail "unexpected"

let test_eth_type_always_pinned () =
  let pats = Compile.patterns_of_entry (Acl.entry ~src:(pfx "10.0.0.0/8") ()) in
  List.iter
    (fun p ->
      Alcotest.(check int) "ipv4 ethertype" 0x0800 (Flow.eth_type p.Pattern.key))
    pats

let test_compile_shape () =
  let acl =
    Acl.whitelist
      [ Acl.entry ~src:(pfx "10.0.0.10/32") ~proto:Acl.Udp
          ~dst_port:(Acl.Port 80) () ]
  in
  let rules = Compile.compile ~allow:(Pi_ovs.Action.Output 2) acl in
  (* 1 allow pattern + 1 catch-all. *)
  Alcotest.(check int) "two rules" 2 (List.length rules);
  let catch = List.nth rules 1 in
  Alcotest.(check int) "catch-all priority" Compile.default_priority
    catch.Rule.priority;
  Alcotest.(check action_t) "catch-all drops" Pi_ovs.Action.Drop catch.Rule.action

let test_compile_too_many_rules () =
  let entries = List.init 40000 (fun _ -> Acl.entry ()) in
  match Compile.compile ~allow:Pi_ovs.Action.Drop (Acl.whitelist entries) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "priority exhaustion should raise"

let test_scoping () =
  let acl = Acl.whitelist [ Acl.entry () ] in
  let rules =
    Compile.compile ~in_port:7 ~dst:(pfx "10.1.0.2/32")
      ~allow:(Pi_ovs.Action.Output 2) acl
  in
  List.iter
    (fun (r : Pi_ovs.Action.t Rule.t) ->
      Alcotest.(check int) "in_port pinned" 7 (Flow.in_port r.Rule.pattern.Pattern.key);
      Alcotest.(check ipv4_t) "dst pinned" (ip "10.1.0.2")
        (Flow.ip_dst r.Rule.pattern.Pattern.key))
    rules

(* The central compilation property: the flow rules implement exactly
   the ACL's reference semantics. *)
let gen_acl =
  let open QCheck2.Gen in
  let gen_port_match =
    oneof
      [ return Acl.Any_port;
        map (fun p -> Acl.Port p) (int_range 0 15);
        map2 (fun a b -> Acl.Port_range (min a b, max a b)) (int_range 0 15) (int_range 0 15) ]
  in
  let gen_entry =
    let* src = opt (map (fun (v, l) -> Pi_pkt.Ipv4_addr.Prefix.make (Int32.of_int v) l)
                     (pair (int_range 0 15) (int_range 28 32))) in
    let* proto = oneofl [ Acl.Any_proto; Acl.Tcp; Acl.Udp; Acl.Icmp ] in
    let* sport = gen_port_match in
    let* dport = gen_port_match in
    return (Acl.entry ?src ~proto ~src_port:sport ~dst_port:dport ())
  in
  let* entries = list_size (int_range 0 4) gen_entry in
  return (Acl.whitelist entries)

let gen_acl_flow =
  let open QCheck2.Gen in
  let* ip_src = map Int32.of_int (int_range 0 15) in
  let* proto = oneofl [ 1; 6; 17 ] in
  let* tp_src = int_range 0 15 in
  let* tp_dst = int_range 0 15 in
  return (Flow.make ~ip_src ~ip_proto:proto ~tp_src ~tp_dst ())

let prop_compile_oracle =
  qtest ~count:300 "compile ≡ Acl.eval"
    QCheck2.Gen.(pair gen_acl (list_size (return 25) gen_acl_flow))
    (fun (acl, flows) ->
      let cls = Tss.create () in
      List.iter (Tss.insert cls)
        (Compile.compile ~allow:(Pi_ovs.Action.Output 1) acl);
      List.for_all
        (fun f ->
          let expected =
            match Acl.eval acl (Acl.five_tuple_of_flow f) with
            | Acl.Allow -> Pi_ovs.Action.Output 1
            | Acl.Deny -> Pi_ovs.Action.Drop
          in
          match Tss.find cls f with
          | Some r -> Pi_ovs.Action.equal r.Rule.action expected
          | None -> false)
        flows)

let suite =
  [ Alcotest.test_case "range: exact port" `Quick test_range_prefixes_exact;
    Alcotest.test_case "range: aligned block" `Quick test_range_prefixes_aligned;
    Alcotest.test_case "range: full space" `Quick test_range_prefixes_full;
    Alcotest.test_case "range: invalid" `Quick test_range_prefixes_invalid;
    prop_range_cover;
    prop_range_disjoint;
    Alcotest.test_case "protocol expansion" `Quick test_proto_expansion;
    Alcotest.test_case "icmp ignores ports" `Quick test_icmp_ignores_ports;
    Alcotest.test_case "eth_type pinned" `Quick test_eth_type_always_pinned;
    Alcotest.test_case "compile shape" `Quick test_compile_shape;
    Alcotest.test_case "priority exhaustion" `Quick test_compile_too_many_rules;
    Alcotest.test_case "in_port/dst scoping" `Quick test_scoping;
    prop_compile_oracle ]
