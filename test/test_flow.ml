open Pi_classifier
open Helpers

let test_defaults () =
  let f = Flow.make () in
  Alcotest.(check int) "eth_type defaults to ipv4" 0x0800 (Flow.eth_type f);
  Alcotest.(check int) "ttl 64" 64 (Flow.ip_ttl f);
  Alcotest.(check int) "in_port 0" 0 (Flow.in_port f)

let test_accessors () =
  let f =
    Flow.make ~in_port:3 ~ip_src:(ip "10.0.0.1") ~ip_dst:(ip "10.0.0.2")
      ~ip_proto:6 ~tp_src:1234 ~tp_dst:80 ~tcp_flags:0x12 ()
  in
  Alcotest.(check int) "in_port" 3 (Flow.in_port f);
  Alcotest.(check ipv4_t) "src" (ip "10.0.0.1") (Flow.ip_src f);
  Alcotest.(check ipv4_t) "dst" (ip "10.0.0.2") (Flow.ip_dst f);
  Alcotest.(check int) "proto" 6 (Flow.ip_proto f);
  Alcotest.(check int) "tp_src" 1234 (Flow.tp_src f);
  Alcotest.(check int) "tp_dst" 80 (Flow.tp_dst f);
  Alcotest.(check int) "tcp_flags" 0x12 (Flow.tcp_flags f)

let test_with_field () =
  let f = Flow.make () in
  let f' = Flow.with_field f Field.Tp_dst 8080 in
  Alcotest.(check int) "updated" 8080 (Flow.tp_dst f');
  Alcotest.(check int) "original untouched" 0 (Flow.tp_dst f);
  Alcotest.(check bool) "not equal" false (Flow.equal f f')

let test_width_clamp () =
  let f = Flow.with_field (Flow.make ()) Field.Tp_dst 0x1FFFF in
  Alcotest.(check int) "clamped to 16 bits" 0xFFFF (Flow.tp_dst f);
  let f = Flow.with_field (Flow.make ()) Field.Vlan (-1) in
  Alcotest.(check int) "vlan clamped to 12 bits" 0xFFF (Flow.vlan f)

let test_of_packet_udp () =
  let p =
    Pi_pkt.Packet.udp ~src:(ip "10.0.0.1") ~dst:(ip "10.0.0.2") ~src_port:5000
      ~dst_port:53 ()
  in
  let f = Flow.of_packet ~in_port:7 p in
  Alcotest.(check int) "in_port" 7 (Flow.in_port f);
  Alcotest.(check int) "proto udp" Pi_pkt.Ipv4.proto_udp (Flow.ip_proto f);
  Alcotest.(check int) "tp_dst" 53 (Flow.tp_dst f);
  Alcotest.(check int) "eth_type" 0x0800 (Flow.eth_type f)

let test_of_packet_icmp_folding () =
  let p = Pi_pkt.Packet.icmp_echo ~src:(ip "1.1.1.1") ~dst:(ip "2.2.2.2") () in
  let f = Flow.of_packet p in
  (* ICMP type/code land in the transport-port fields, as in OVS. *)
  Alcotest.(check int) "type in tp_src" Pi_pkt.Icmp.echo_request (Flow.tp_src f);
  Alcotest.(check int) "code in tp_dst" 0 (Flow.tp_dst f)

let test_of_packet_tcp_flags () =
  let p =
    Pi_pkt.Packet.tcp ~flags:Pi_pkt.Tcp.flag_syn ~src:(ip "1.1.1.1")
      ~dst:(ip "2.2.2.2") ~src_port:1 ~dst_port:2 ()
  in
  let f = Flow.of_packet p in
  Alcotest.(check int) "syn flag" Pi_pkt.Tcp.flag_syn (Flow.tcp_flags f)

let prop_equal_hash =
  qtest "equal flows hash equally" (QCheck2.Gen.pair gen_flow gen_flow)
    (fun (a, b) -> (not (Flow.equal a b)) || Flow.hash a = Flow.hash b)

let prop_compare_consistent =
  qtest "compare 0 iff equal" (QCheck2.Gen.pair gen_flow gen_flow)
    (fun (a, b) -> Flow.equal a b = (Flow.compare a b = 0))

let prop_get_with_field =
  qtest "with_field then get"
    QCheck2.Gen.(pair gen_flow (int_range 0 (Field.count - 1)))
    (fun (f, i) ->
      let field = Field.of_index i in
      let v = 3 in
      Flow.get (Flow.with_field f field v) field = v)

let suite =
  [ Alcotest.test_case "defaults" `Quick test_defaults;
    Alcotest.test_case "accessors" `Quick test_accessors;
    Alcotest.test_case "with_field" `Quick test_with_field;
    Alcotest.test_case "width clamping" `Quick test_width_clamp;
    Alcotest.test_case "of_packet udp" `Quick test_of_packet_udp;
    Alcotest.test_case "of_packet icmp folding" `Quick test_of_packet_icmp_folding;
    Alcotest.test_case "of_packet tcp flags" `Quick test_of_packet_tcp_flags;
    prop_equal_hash;
    prop_compare_consistent;
    prop_get_with_field ]
