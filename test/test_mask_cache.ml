open Pi_ovs
open Pi_classifier
open Helpers

let src_mask len = Mask.with_prefix Mask.empty Field.Ip_src len

let test_capacity_pow2 () =
  Alcotest.(check int) "rounded" 256 (Mask_cache.capacity (Mask_cache.create ()));
  Alcotest.(check int) "rounded up" 128
    (Mask_cache.capacity (Mask_cache.create ~capacity:100 ()))

let test_hint_record () =
  let c = Mask_cache.create () in
  let f = Flow.make ~ip_src:(ip "10.0.0.1") () in
  Alcotest.(check int) "empty" (-1) (Mask_cache.hint c f);
  Mask_cache.record c f 7;
  Alcotest.(check int) "recorded" 7 (Mask_cache.hint c f);
  Mask_cache.clear c;
  Alcotest.(check int) "cleared" (-1) (Mask_cache.hint c f)

let test_collision_overwrites () =
  let c = Mask_cache.create ~capacity:1 () in
  let f1 = Flow.make ~ip_src:(ip "10.0.0.1") () in
  let f2 = Flow.make ~ip_src:(ip "10.0.0.2") () in
  Mask_cache.record c f1 3;
  Mask_cache.record c f2 9;
  Alcotest.(check int) "overwritten" 9 (Mask_cache.hint c f1)

(* A megaflow cache with [n] masks; an entry matching [flow] sits under
   the LAST mask, so unhinted lookups pay n probes. *)
let deep_megaflow n flow =
  let mf = Megaflow.create () in
  for i = 1 to n - 1 do
    let key = Flow.make ~ip_src:0xFFFFFFFFl () in
    ignore (Megaflow.insert mf ~key ~mask:(src_mask i) ~action:Action.Drop ~revision:0 ~now:0. ())
  done;
  ignore
    (Megaflow.insert mf ~key:flow ~mask:Mask.exact ~action:(Action.Output 1)
       ~revision:0 ~now:0. ());
  mf

let test_hinted_lookup_o1 () =
  let flow = Flow.make ~ip_src:(ip "10.0.0.9") () in
  let mf = deep_megaflow 32 flow in
  let cache = Mask_cache.create () in
  let s = Megaflow.lookup_stats () in
  (* First lookup: full scan, hint recorded. *)
  let e1 = Megaflow.lookup_hinted_s mf s cache flow ~now:0. ~pkt_len:10 in
  Alcotest.(check bool) "found" true (e1 <> None);
  Alcotest.(check int) "cold lookup scans" 32 s.Megaflow.s_probes;
  (* Second lookup: one probe via the hint. *)
  let e2 = Megaflow.lookup_hinted_s mf s cache flow ~now:0. ~pkt_len:10 in
  Alcotest.(check bool) "found again" true (e2 <> None);
  Alcotest.(check int) "hinted lookup is one probe" 1 s.Megaflow.s_probes;
  Alcotest.(check int) "cache hit counted" 1 (Mask_cache.hits cache);
  Alcotest.(check int) "cold counted as miss" 1 (Mask_cache.misses cache)

let test_stale_hint_pays_extra_probe () =
  let flow = Flow.make ~ip_src:(ip "10.0.0.9") () in
  let mf = deep_megaflow 8 flow in
  let cache = Mask_cache.create () in
  let s = Megaflow.lookup_stats () in
  (* Poison the slot with a wrong index. *)
  Mask_cache.record cache flow 2;
  ignore (Megaflow.lookup_hinted_s mf s cache flow ~now:0. ~pkt_len:10);
  Alcotest.(check int) "stale probe + full scan" (1 + 8) s.Megaflow.s_probes

let test_out_of_range_hint_not_charged () =
  let flow = Flow.make ~ip_src:(ip "10.0.0.9") () in
  let mf = deep_megaflow 8 flow in
  let cache = Mask_cache.create () in
  let s = Megaflow.lookup_stats () in
  (* A hint beyond the subtable array probes nothing, so the fallback
     scan must not be charged a phantom failed-hint probe: 8, not 9. *)
  Mask_cache.record cache flow 100;
  let e = Megaflow.lookup_hinted_s mf s cache flow ~now:0. ~pkt_len:10 in
  Alcotest.(check bool) "found" true (e <> None);
  Alcotest.(check int) "no probe charged for the bogus index" 8 s.Megaflow.s_probes

let test_resort_invalidates_hints () =
  let flow = Flow.make ~ip_src:(ip "10.0.0.9") () in
  (* The matching entry sits under the LAST of 8 masks. *)
  let mf = deep_megaflow 8 flow in
  let cache = Mask_cache.create () in
  let s = Megaflow.lookup_stats () in
  ignore (Megaflow.lookup_hinted_s mf s cache flow ~now:0. ~pkt_len:10);
  ignore (Megaflow.lookup_hinted_s mf s cache flow ~now:0. ~pkt_len:10);
  Alcotest.(check int) "hint serves before resort" 1 s.Megaflow.s_probes;
  (* Ranking moves the (only) hit subtable to the front and reorders the
     array: every recorded index is now stale. The cache must be
     invalidated — a stale hint would probe a cold subtable first and
     pay 2 where a clean scan pays 1. *)
  Megaflow.resort_by_hits mf;
  let e = Megaflow.lookup_hinted_s mf s cache flow ~now:0. ~pkt_len:10 in
  Alcotest.(check bool) "still found" true (e <> None);
  Alcotest.(check int) "no stale probe after resort" 1 s.Megaflow.s_probes;
  Alcotest.(check int) "invalidated lookup counted as miss" 2
    (Mask_cache.misses cache)

let test_sync_generation () =
  let c = Mask_cache.create () in
  let f = Flow.make ~ip_src:(ip "10.0.0.1") () in
  Mask_cache.record c f 3;
  Mask_cache.sync_generation c (Mask_cache.generation c);
  Alcotest.(check int) "same generation keeps hints" 3 (Mask_cache.hint c f);
  Mask_cache.sync_generation c 42;
  Alcotest.(check int) "new generation clears hints" (-1) (Mask_cache.hint c f);
  Alcotest.(check int) "generation adopted" 42 (Mask_cache.generation c)

let test_hinted_miss () =
  let flow = Flow.make ~ip_src:(ip "10.0.0.9") () in
  let mf = deep_megaflow 8 flow in
  let cache = Mask_cache.create () in
  let stranger = Flow.make ~ip_src:(ip "99.0.0.1") ~tp_dst:7 () in
  let s = Megaflow.lookup_stats () in
  let e = Megaflow.lookup_hinted_s mf s cache stranger ~now:0. ~pkt_len:10 in
  Alcotest.(check bool) "miss" true (e = None);
  Alcotest.(check int) "scanned everything" 8 s.Megaflow.s_probes

let test_resort_by_hits () =
  let mf = Megaflow.create () in
  let cold_key = Flow.make ~ip_src:0xFFFFFFFFl () in
  ignore (Megaflow.insert mf ~key:cold_key ~mask:(src_mask 1) ~action:Action.Drop ~revision:0 ~now:0. ());
  let hot = Flow.make ~ip_src:(ip "10.0.0.9") () in
  ignore (Megaflow.insert mf ~key:hot ~mask:Mask.exact ~action:Action.Drop ~revision:0 ~now:0. ());
  (* Hot flow hits the second subtable repeatedly... *)
  for _ = 1 to 10 do
    ignore (Megaflow.lookup mf hot ~now:0. ~pkt_len:10)
  done;
  let s = Megaflow.lookup_stats () in
  ignore (Megaflow.lookup_s mf s hot ~now:0. ~pkt_len:10);
  Alcotest.(check int) "second position before ranking" 2 s.Megaflow.s_probes;
  Megaflow.resort_by_hits mf;
  ignore (Megaflow.lookup_s mf s hot ~now:0. ~pkt_len:10);
  Alcotest.(check int) "first position after ranking" 1 s.Megaflow.s_probes

let test_datapath_kernel_flavour () =
  let config =
    { Datapath.default_config with
      Datapath.emc_enabled = false;
      mask_cache_capacity = Some 256 }
  in
  let dp = Datapath.create ~config (Pi_pkt.Prng.create 8L) () in
  Datapath.install_rules dp
    [ Rule.make ~priority:1 ~pattern:Pattern.any ~action:Action.Drop () ];
  let f = Flow.make ~ip_src:(ip "10.0.0.1") () in
  (* 1st: upcall; 2nd: scan + hint recorded; 3rd: served by the hint. *)
  ignore (Datapath.process dp ~now:0. f ~pkt_len:10);
  ignore (Datapath.process dp ~now:0. f ~pkt_len:10);
  let _, o = Datapath.process dp ~now:0. f ~pkt_len:10 in
  Alcotest.(check int) "hinted: one probe" 1 o.Cost_model.mf_probes;
  match Datapath.mask_cache dp with
  | Some c -> Alcotest.(check bool) "cache hits recorded" true (Mask_cache.hits c >= 1)
  | None -> Alcotest.fail "mask cache missing"

let test_datapath_ranking () =
  let config =
    { Datapath.default_config with
      Datapath.emc_enabled = false;
      rank_subtables = true }
  in
  let dp = Datapath.create ~config (Pi_pkt.Prng.create 8L) () in
  Datapath.install_rules dp
    [ Rule.make ~priority:100
        ~pattern:(Pattern.with_ip_src Pattern.any (pfx "10.0.0.10/32"))
        ~action:(Action.Output 1) ();
      Rule.make ~priority:1 ~pattern:Pattern.any ~action:Action.Drop () ];
  (* Create some deny masks, then hammer the allow megaflow. *)
  for k = 0 to 15 do
    let src = Int32.logxor (ip "10.0.0.10") (Int32.shift_left 1l (31 - k)) in
    ignore (Datapath.process dp ~now:0. (Flow.make ~ip_src:src ()) ~pkt_len:10)
  done;
  let hot = Flow.make ~ip_src:(ip "10.0.0.10") () in
  for _ = 1 to 50 do
    ignore (Datapath.process dp ~now:0.1 hot ~pkt_len:10)
  done;
  let _, before = Datapath.process dp ~now:0.2 hot ~pkt_len:10 in
  ignore (Datapath.revalidate dp ~now:0.3);  (* triggers the resort *)
  let _, after = Datapath.process dp ~now:0.4 hot ~pkt_len:10 in
  Alcotest.(check bool)
    (Printf.sprintf "ranking moved the hot mask forward (%d -> %d)"
       before.Cost_model.mf_probes after.Cost_model.mf_probes)
    true
    (after.Cost_model.mf_probes < before.Cost_model.mf_probes);
  Alcotest.(check int) "hot mask now first" 1 after.Cost_model.mf_probes

(* Megaflow caches for the equivalence properties are built the honest
   way — populated through a slow path from random rule sets — because
   the cache's non-overlap invariant (which makes scan order and hints
   irrelevant to verdicts) only holds for slow-path-generated entries. *)
let gen_setting =
  let open QCheck2.Gen in
  let gen_rule =
    let* pattern = Helpers.gen_small_pattern in
    let* priority = int_range 0 8 in
    let* out = int_range 1 3 in
    return (Rule.make ~priority ~pattern ~action:(Action.Output out) ())
  in
  triple
    (list_size (int_range 1 8) gen_rule)
    (list_size (return 30) Helpers.gen_small_flow)
    (list_size (return 20) Helpers.gen_small_flow)

let build_mf rules warm_flows =
  let config = { Datapath.default_config with Datapath.emc_enabled = false } in
  let dp = Datapath.create ~config (Pi_pkt.Prng.create 1L) () in
  Datapath.install_rules dp rules;
  List.iter
    (fun f -> ignore (Datapath.process dp ~now:0. f ~pkt_len:1))
    warm_flows;
  Datapath.megaflow dp

let entry_action = function
  | Some (e : Megaflow.entry) -> Some e.Megaflow.action
  | None -> None

let prop_hinted_equiv =
  qtest ~count:200 "hinted lookup ≡ plain lookup" gen_setting
    (fun (rules, warm, flows) ->
      let mf_a = build_mf rules warm in
      let mf_b = build_mf rules warm in
      let cache = Mask_cache.create () in
      List.for_all
        (fun f ->
          (* Look each flow up twice so hints are exercised. *)
          let a1 = entry_action (Megaflow.lookup mf_a f ~now:0. ~pkt_len:1) in
          let b1 = entry_action (Megaflow.lookup_hinted mf_b cache f ~now:0. ~pkt_len:1) in
          let b2 = entry_action (Megaflow.lookup_hinted mf_b cache f ~now:0. ~pkt_len:1) in
          a1 = b1 && b1 = b2)
        flows)

let prop_resort_preserves =
  qtest ~count:200 "ranking preserves verdicts" gen_setting
    (fun (rules, warm, flows) ->
      let mf = build_mf rules warm in
      let before =
        List.map (fun f -> entry_action (Megaflow.lookup mf f ~now:0. ~pkt_len:1)) flows
      in
      Megaflow.resort_by_hits mf;
      let after =
        List.map (fun f -> entry_action (Megaflow.lookup mf f ~now:0. ~pkt_len:1)) flows
      in
      before = after)

let suite =
  [ Alcotest.test_case "capacity power of two" `Quick test_capacity_pow2;
    Alcotest.test_case "hint/record/clear" `Quick test_hint_record;
    Alcotest.test_case "collision overwrites" `Quick test_collision_overwrites;
    Alcotest.test_case "hinted lookup is O(1)" `Quick test_hinted_lookup_o1;
    Alcotest.test_case "stale hint pays a probe" `Quick test_stale_hint_pays_extra_probe;
    Alcotest.test_case "out-of-range hint not charged" `Quick test_out_of_range_hint_not_charged;
    Alcotest.test_case "resort invalidates hints" `Quick test_resort_invalidates_hints;
    Alcotest.test_case "sync_generation" `Quick test_sync_generation;
    Alcotest.test_case "hinted miss scans all" `Quick test_hinted_miss;
    Alcotest.test_case "resort_by_hits" `Quick test_resort_by_hits;
    Alcotest.test_case "datapath kernel flavour" `Quick test_datapath_kernel_flavour;
    Alcotest.test_case "datapath pvector ranking" `Quick test_datapath_ranking;
    prop_hinted_equiv;
    prop_resort_preserves ]
