open Policy_injection
open Pi_classifier
open Helpers

let spec variant =
  Policy_gen.default_spec ~variant ~allow_src:(ip "10.0.0.10") ()

let gen variant =
  Packet_gen.make ~spec:(spec variant) ~dst:(ip "10.1.0.3") ()

let test_divergent_value_basics () =
  (* width 8, allowed 00001010 *)
  let allowed = 0b00001010 in
  for depth = 1 to 8 do
    let v =
      Packet_gen.divergent_value ~width:8 ~allowed ~depth ~rand:0xFF
    in
    (* Shares depth-1 leading bits... *)
    let shift = 8 - (depth - 1) in
    if depth > 1 then begin
      let hi x = x lsr shift in
      Alcotest.(check int)
        (Printf.sprintf "depth %d: shares prefix" depth)
        (hi allowed) (hi v)
    end;
    (* ...and differs exactly at bit [depth]. *)
    let bit x = (x lsr (8 - depth)) land 1 in
    Alcotest.(check bool)
      (Printf.sprintf "depth %d: flips bit" depth)
      true
      (bit allowed <> bit v)
  done

let test_divergent_value_invalid () =
  match Packet_gen.divergent_value ~width:8 ~allowed:0 ~depth:9 ~rand:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "depth beyond width should raise"

let prop_divergent_never_allowed =
  qtest "divergent value never equals allowed"
    QCheck2.Gen.(
      let* allowed = int_range 0 65535 in
      let* depth = int_range 1 16 in
      let* rand = int_range 0 65535 in
      return (allowed, depth, rand))
    (fun (allowed, depth, rand) ->
      let v =
        Packet_gen.divergent_value ~width:16 ~allowed ~depth ~rand
      in
      v <> allowed)

let test_flow_counts () =
  List.iter
    (fun v ->
      Alcotest.(check int) (Variant.name v)
        (Predict.covert_packets v)
        (List.length (Packet_gen.flows (gen v))))
    [ Variant.Src_only; Variant.Src_dport ]

let test_flows_deterministic () =
  let a = Packet_gen.flows ~seed:9L (gen Variant.Src_dport) in
  let b = Packet_gen.flows ~seed:9L (gen Variant.Src_dport) in
  Alcotest.(check bool) "same seed, same flows" true
    (List.for_all2 Flow.equal a b)

let test_flows_all_denied () =
  let acl = Policy_gen.acl (spec Variant.Src_dport) in
  List.iter
    (fun f ->
      if Pi_cms.Acl.eval acl (Pi_cms.Acl.five_tuple_of_flow f) <> Pi_cms.Acl.Deny
      then Alcotest.fail "covert packet would be allowed (not covert)")
    (Packet_gen.flows (gen Variant.Src_dport))

let test_allow_flow_allowed () =
  let acl = Policy_gen.acl (spec Variant.Src_sport_dport) in
  let f = Packet_gen.allow_flow (gen Variant.Src_sport_dport) in
  Alcotest.(check bool) "allow flow passes" true
    (Pi_cms.Acl.eval acl (Pi_cms.Acl.five_tuple_of_flow f) = Pi_cms.Acl.Allow)

(* End-to-end: the covert sequence materialises exactly the predicted
   number of megaflow masks, for every variant. *)
let masks_through_datapath variant =
  let dp = Pi_ovs.Datapath.create (Pi_pkt.Prng.create 2L) () in
  Pi_ovs.Datapath.install_rules dp
    (Pi_cms.Compile.compile
       ~dst:(Pi_pkt.Ipv4_addr.Prefix.make (ip "10.1.0.3") 32)
       ~allow:(Pi_ovs.Action.Output 2)
       (Policy_gen.acl (spec variant)));
  List.iter
    (fun f -> ignore (Pi_ovs.Datapath.process dp ~now:0. f ~pkt_len:100))
    (Packet_gen.flows (gen variant));
  Pi_ovs.Datapath.n_masks dp

let test_masks_src_only () =
  Alcotest.(check int) "32" (Predict.variant_masks Variant.Src_only)
    (masks_through_datapath Variant.Src_only)

let test_masks_src_dport () =
  Alcotest.(check int) "512" (Predict.variant_masks Variant.Src_dport)
    (masks_through_datapath Variant.Src_dport)

let test_masks_full () =
  Alcotest.(check int) "8192" (Predict.variant_masks Variant.Src_sport_dport)
    (masks_through_datapath Variant.Src_sport_dport)

let test_refresh_hits_same_megaflows () =
  (* A second round (different seed → different low bits) must not
     create new megaflows: same masks, same masked keys. *)
  let dp = Pi_ovs.Datapath.create (Pi_pkt.Prng.create 2L) () in
  Pi_ovs.Datapath.install_rules dp
    (Pi_cms.Compile.compile
       ~dst:(Pi_pkt.Ipv4_addr.Prefix.make (ip "10.1.0.3") 32)
       ~allow:(Pi_ovs.Action.Output 2)
       (Policy_gen.acl (spec Variant.Src_dport)));
  let g = gen Variant.Src_dport in
  List.iter
    (fun f -> ignore (Pi_ovs.Datapath.process dp ~now:0. f ~pkt_len:100))
    (Packet_gen.flows ~seed:1L g);
  let upcalls_before = Pi_ovs.Datapath.n_upcalls dp in
  let entries_before = Pi_ovs.Datapath.n_megaflows dp in
  List.iter
    (fun f -> ignore (Pi_ovs.Datapath.process dp ~now:1. f ~pkt_len:100))
    (Packet_gen.flows ~seed:2L g);
  Alcotest.(check int) "no new upcalls" upcalls_before
    (Pi_ovs.Datapath.n_upcalls dp);
  Alcotest.(check int) "no new megaflows" entries_before
    (Pi_ovs.Datapath.n_megaflows dp)

let test_packets_parse () =
  List.iter
    (fun p ->
      match Pi_pkt.Packet.parse (Pi_pkt.Packet.serialize p) with
      | Ok _ -> ()
      | Error e -> Alcotest.fail e)
    (Packet_gen.packets (gen Variant.Src_only))

let test_packets_size () =
  List.iter
    (fun p ->
      Alcotest.(check int) "covert frame size" 100 (Pi_pkt.Packet.size p))
    (Packet_gen.packets (gen Variant.Src_only))

let test_pcap_export () =
  let records = Packet_gen.to_pcap ~rate_pps:1000. (gen Variant.Src_only) in
  Alcotest.(check int) "one record per flow" 32 (List.length records);
  match Pi_pkt.Pcap.of_bytes (Pi_pkt.Pcap.to_bytes records) with
  | Ok rs -> Alcotest.(check int) "roundtrips" 32 (List.length rs)
  | Error e -> Alcotest.fail e

let suite =
  [ Alcotest.test_case "divergent_value bit structure" `Quick test_divergent_value_basics;
    Alcotest.test_case "divergent_value invalid depth" `Quick test_divergent_value_invalid;
    prop_divergent_never_allowed;
    Alcotest.test_case "flow counts = prediction" `Quick test_flow_counts;
    Alcotest.test_case "deterministic flows" `Quick test_flows_deterministic;
    Alcotest.test_case "all covert flows denied" `Quick test_flows_all_denied;
    Alcotest.test_case "allow flow allowed" `Quick test_allow_flow_allowed;
    Alcotest.test_case "datapath masks: src-only = 32" `Quick test_masks_src_only;
    Alcotest.test_case "datapath masks: src+dport = 512" `Quick test_masks_src_dport;
    Alcotest.test_case "datapath masks: full = 8192" `Slow test_masks_full;
    Alcotest.test_case "refresh reuses megaflows" `Quick test_refresh_hits_same_megaflows;
    Alcotest.test_case "covert packets parse" `Quick test_packets_parse;
    Alcotest.test_case "covert frame size" `Quick test_packets_size;
    Alcotest.test_case "pcap export" `Quick test_pcap_export ]
