(* Shared alcotest testables, qcheck generators and builders. *)

open Pi_classifier

let flow_t = Alcotest.testable Flow.pp Flow.equal
let mask_t = Alcotest.testable Mask.pp Mask.equal
let pattern_t = Alcotest.testable Pattern.pp Pattern.equal
let action_t = Alcotest.testable Pi_ovs.Action.pp Pi_ovs.Action.equal
let ipv4_t = Alcotest.testable Pi_pkt.Ipv4_addr.pp Pi_pkt.Ipv4_addr.equal
let prefix_t =
  Alcotest.testable Pi_pkt.Ipv4_addr.Prefix.pp Pi_pkt.Ipv4_addr.Prefix.equal
let packet_t = Alcotest.testable Pi_pkt.Packet.pp Pi_pkt.Packet.equal

let ip = Pi_pkt.Ipv4_addr.of_string
let pfx = Pi_pkt.Ipv4_addr.Prefix.of_string

(* QCheck generators *)

let gen_ipv4 = QCheck2.Gen.map Int32.of_int QCheck2.Gen.int
let gen_port = QCheck2.Gen.int_range 0 65535
let gen_proto =
  QCheck2.Gen.oneofl
    [ Pi_pkt.Ipv4.proto_tcp; Pi_pkt.Ipv4.proto_udp; Pi_pkt.Ipv4.proto_icmp ]

let gen_flow =
  let open QCheck2.Gen in
  let* in_port = int_range 0 15 in
  let* ip_src = gen_ipv4 in
  let* ip_dst = gen_ipv4 in
  let* ip_proto = gen_proto in
  let* tp_src = gen_port in
  let* tp_dst = gen_port in
  return (Flow.make ~in_port ~ip_src ~ip_dst ~ip_proto ~tp_src ~tp_dst ())

(* A flow "near" interesting values: small fields so random rule sets
   and flows actually collide. *)
let gen_small_flow =
  let open QCheck2.Gen in
  let* ip_src = map Int32.of_int (int_range 0 15) in
  let* ip_dst = map Int32.of_int (int_range 0 15) in
  let* ip_proto = oneofl [ 6; 17 ] in
  let* tp_src = int_range 0 7 in
  let* tp_dst = int_range 0 7 in
  return (Flow.make ~ip_src ~ip_dst ~ip_proto ~tp_src ~tp_dst ())

let gen_small_pattern =
  let open QCheck2.Gen in
  let constrain pat =
    let* which = int_range 0 4 in
    let* exact = bool in
    match which with
    | 0 ->
      let* v = int_range 0 15 in
      let* len = if exact then return 32 else int_range 0 32 in
      return (Pattern.with_prefix pat Field.Ip_src ~len v)
    | 1 ->
      let* v = int_range 0 15 in
      let* len = if exact then return 32 else int_range 0 32 in
      return (Pattern.with_prefix pat Field.Ip_dst ~len v)
    | 2 ->
      let* v = oneofl [ 6; 17 ] in
      return (Pattern.with_exact pat Field.Ip_proto v)
    | 3 ->
      let* v = int_range 0 7 in
      let* len = if exact then return 16 else int_range 0 16 in
      return (Pattern.with_prefix pat Field.Tp_src ~len v)
    | _ ->
      let* v = int_range 0 7 in
      let* len = if exact then return 16 else int_range 0 16 in
      return (Pattern.with_prefix pat Field.Tp_dst ~len v)
  in
  let* n = int_range 0 3 in
  let rec go pat k = if k = 0 then return pat else bind (constrain pat) (fun p -> go p (k - 1)) in
  go Pattern.any n

let gen_rules =
  let open QCheck2.Gen in
  let gen_rule =
    let* pattern = gen_small_pattern in
    let* priority = int_range 0 8 in
    let* action = oneofl [ "a"; "b"; "c" ] in
    return (Rule.make ~priority ~pattern ~action ())
  in
  list_size (int_range 1 12) gen_rule

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count ~name gen prop)

let check_raises_invalid name f =
  Alcotest.test_case name `Quick (fun () ->
      match f () with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "expected Invalid_argument")

(* Tiny substring search (no astring dependency in tests). *)
module Astring_like = struct
  let contains haystack needle =
    let nh = String.length haystack and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
    nn = 0 || go 0
end
