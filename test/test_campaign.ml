open Policy_injection
open Helpers

let gen variant =
  Packet_gen.make
    ~spec:(Policy_gen.default_spec ~variant ~allow_src:(ip "10.0.0.10") ())
    ~dst:(ip "10.1.0.3") ()

let mk ?(variant = Variant.Src_only) ?(refresh = 5.) ?(start = 60.) ?(stop = 80.) () =
  Campaign.make ~refresh_period:refresh ~gen:(gen variant) ~start ~stop ()

let test_rate () =
  let c = mk () in
  (* 32 flows per 5 s round. *)
  Alcotest.(check (float 1e-9)) "rate" (32. /. 5.) (Campaign.rate_pps c)

let test_bandwidth_paper_claim () =
  let c = mk ~variant:Variant.Src_sport_dport () in
  let bps = Campaign.bandwidth_bps c in
  Alcotest.(check bool)
    (Printf.sprintf "1-2 Mbps (got %.2f)" (bps /. 1e6))
    true
    (bps >= 1e6 && bps <= 2e6)

let test_n_rounds () =
  Alcotest.(check int) "4 rounds in 20 s at 5 s" 4 (Campaign.n_rounds (mk ()))

let test_events_window () =
  let c = mk () in
  let events = List.of_seq (Campaign.events c) in
  Alcotest.(check int) "4 rounds × 32 flows" (4 * 32) (List.length events);
  List.iter
    (fun (t, _) ->
      if t < 60. || t >= 80. then Alcotest.failf "event at %f outside window" t)
    events

let test_events_monotonic () =
  let c = mk () in
  let prev = ref neg_infinity in
  Seq.iter
    (fun (t, _) ->
      if t < !prev then Alcotest.fail "events not time-ordered";
      prev := t)
    (Campaign.events c)

let test_rounds_share_masks () =
  (* Different rounds randomise low bits but must target the same
     megaflow masked keys: same divergence structure. *)
  let c = mk () in
  let f0 = Campaign.round_flows c ~round:0 in
  let f1 = Campaign.round_flows c ~round:1 in
  Alcotest.(check int) "same count" (List.length f0) (List.length f1);
  List.iter2
    (fun a b ->
      (* Same divergence depth = same leading-bit agreement with the
         whitelisted source. *)
      let depth v =
        let allowed = Int32.to_int (ip "10.0.0.10") land 0xFFFFFFFF in
        let x = allowed lxor Pi_classifier.Flow.get v Pi_classifier.Field.Ip_src in
        let rec go i = if i >= 32 then 32
          else if (x lsr (31 - i)) land 1 = 1 then i
          else go (i + 1)
        in
        go 0
      in
      Alcotest.(check int) "same divergence depth" (depth a) (depth b))
    f0 f1

let test_round_determinism () =
  let c = mk () in
  let a = Campaign.round_flows c ~round:3 in
  let b = Campaign.round_flows c ~round:3 in
  Alcotest.(check bool) "same round, same flows" true
    (List.for_all2 Pi_classifier.Flow.equal a b)

let test_invalid () =
  (match Campaign.make ~gen:(gen Variant.Src_only) ~start:10. ~stop:5. () with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "stop before start should raise");
  match
    Campaign.make ~refresh_period:0. ~gen:(gen Variant.Src_only) ~start:0.
      ~stop:5. ()
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "zero refresh should raise"

let suite =
  [ Alcotest.test_case "rate" `Quick test_rate;
    Alcotest.test_case "bandwidth matches paper claim" `Quick test_bandwidth_paper_claim;
    Alcotest.test_case "n_rounds" `Quick test_n_rounds;
    Alcotest.test_case "events inside window" `Quick test_events_window;
    Alcotest.test_case "events monotonic" `Quick test_events_monotonic;
    Alcotest.test_case "rounds share mask structure" `Quick test_rounds_share_masks;
    Alcotest.test_case "round determinism" `Quick test_round_determinism;
    Alcotest.test_case "invalid parameters" `Quick test_invalid ]
