(* The .pis language: parser/pretty-printer round trip, exact
   diagnostics, and the DSL-vs-OCaml equivalence contract — a .pis file
   lowers onto the very Scenario.params a direct library call builds,
   so the interpreter's golden JSON agrees with the engine number for
   number. *)

open Pi_dsl
module A = Ast

let d = A.dummy

(* --- generators ----------------------------------------------------- *)

let gen_ident =
  let open QCheck2.Gen in
  let* stem = oneofl [ "host"; "victim"; "attacker"; "pol"; "run_"; "x" ] in
  let* n = int_range 0 99 in
  return (Printf.sprintf "%s%d" stem n)

(* Nonnegative only: the lexer has no '-' (nothing in the grammar is
   negative), and every finite float round-trips via %.12g/%.17g. *)
let gen_num =
  let open QCheck2.Gen in
  oneof
    [ map float_of_int (int_range 0 100000);
      float_range 0. 1000.;
      float_range 0. 1e12 ]

let gen_int = QCheck2.Gen.int_range 0 100000

let gen_prefix =
  let open QCheck2.Gen in
  let* a = int_range 0 255 and* b = int_range 0 255 in
  let* c = int_range 0 255 and* e = int_range 0 255 in
  let* len = int_range 0 32 in
  (* make masks host bits, so printing and re-parsing is clean *)
  return (Pi_pkt.Ipv4_addr.Prefix.make (Pi_pkt.Ipv4_addr.of_octets a b c e) len)

let gen_ports =
  let open QCheck2.Gen in
  let* port = int_range 0 65535 and* hi = int_range 0 65535 in
  oneofl [ A.Any_port; A.Port port; A.Range (min port hi, max port hi) ]

let gen_clause =
  let open QCheck2.Gen in
  oneof
    [ map (fun p -> A.Src (d p)) gen_prefix;
      map (fun p -> A.Proto (d p))
        (oneofl [ A.P_any; A.P_tcp; A.P_udp; A.P_icmp ]);
      map (fun p -> A.Sport (d p)) gen_ports;
      map (fun p -> A.Dport (d p)) gen_ports ]

let gen_rule =
  let open QCheck2.Gen in
  oneof
    [ map (fun cs -> A.Allow cs) (list_size (int_range 1 4) gen_clause);
      return A.Deny_all ]

let gen_opt g = QCheck2.Gen.option g
let gen_oloc g = QCheck2.Gen.option (QCheck2.Gen.map d g)

let gen_topology =
  let open QCheck2.Gen in
  let item =
    oneof
      [ (let* s_name = gen_ident and* up = gen_int in
         return (A.Server { A.s_name = d s_name; s_uplink = d up }));
        (let* t_name = gen_ident and* port = gen_int in
         return (A.Tenant { A.t_name = d t_name; t_port = d port }));
        map (fun n -> A.Services (d n)) gen_int ]
  in
  list_size (int_range 0 4) item

let gen_policy =
  let open QCheck2.Gen in
  let* p_name = gen_ident in
  let* p_dialect =
    gen_oloc (oneofl [ A.K8s; A.Security_group; A.Calico ])
  in
  let* p_tenant = gen_oloc gen_ident in
  let* p_rules = list_size (int_range 0 3) (map d gen_rule) in
  return { A.p_name = d p_name; p_dialect; p_tenant; p_rules }

let gen_victim =
  let open QCheck2.Gen in
  let* v_tenant = gen_oloc gen_ident in
  let* v_offered_gbps = gen_oloc gen_num in
  let* v_pkt_len = gen_oloc gen_int in
  let* v_flows = gen_oloc gen_int in
  let* v_churn = gen_oloc gen_num in
  let* v_samples_per_tick = gen_oloc gen_int in
  return
    { A.v_tenant; v_offered_gbps; v_pkt_len; v_flows; v_churn;
      v_samples_per_tick }

let gen_attack =
  let open QCheck2.Gen in
  let* a_policy = gen_oloc gen_ident in
  let* a_start = gen_oloc gen_num in
  let* a_stop = gen_oloc gen_num in
  let* a_refresh = gen_oloc gen_num in
  let* a_pkt_len = gen_oloc gen_int in
  let* a_exact_per_tick = gen_oloc gen_int in
  return { A.a_policy; a_start; a_stop; a_refresh; a_pkt_len; a_exact_per_tick }

let gen_traffic =
  let open QCheck2.Gen in
  let* tr_seed = gen_oloc gen_int in
  let* tr_duration = gen_oloc gen_num in
  let* tr_tick = gen_oloc gen_num in
  let* tr_victim = gen_opt (map d gen_victim) in
  let* tr_attack = gen_opt (map d gen_attack) in
  return { A.tr_seed; tr_duration; tr_tick; tr_victim; tr_attack }

let gen_assertion =
  let open QCheck2.Gen in
  let* m = gen_ident in
  let* cmp = oneofl [ A.Le; A.Ge; A.Lt; A.Gt; A.Eq ] in
  let* value = gen_num in
  return { A.as_metric = d m; as_cmp = cmp; as_value = d value }

let gen_run =
  let open QCheck2.Gen in
  let* r_name = gen_ident in
  let* r_backend = gen_oloc (oneofl [ A.Pmd; A.Datapath; A.Cacheless ]) in
  let* r_shards = gen_oloc gen_int in
  let* r_batch = gen_oloc gen_int in
  let* r_upcall_queue = gen_oloc gen_int in
  let* r_mask_limit = gen_oloc gen_int in
  let* r_coarsen = gen_oloc gen_int in
  let* r_emc = gen_oloc QCheck2.Gen.bool in
  let* r_assert =
    gen_opt (map d (list_size (int_range 0 3) gen_assertion))
  in
  return
    { A.r_name = d r_name; r_backend; r_shards; r_batch; r_upcall_queue;
      r_mask_limit; r_coarsen; r_emc; r_assert }

let gen_program =
  let open QCheck2.Gen in
  let* name = gen_ident in
  let block =
    oneof
      [ map (fun t -> A.Topology (d t)) gen_topology;
        map (fun p -> A.Policy (d p)) gen_policy;
        map (fun t -> A.Traffic (d t)) gen_traffic;
        map (fun r -> A.Run (d r)) gen_run ]
  in
  let* blocks = list_size (int_range 0 5) block in
  return { A.name = d name; blocks }

let roundtrip =
  Helpers.qtest ~count:500 "parse (pp program) = program" gen_program
    (fun p ->
      let src = Pretty.to_string p in
      match Parser.parse ~file:"gen.pis" src with
      | Error diag ->
        QCheck2.Test.fail_reportf "re-parse failed: %s@.---@.%s"
          (Diag.to_string diag) src
      | Ok p' ->
        if A.equal_program p p' then true
        else
          QCheck2.Test.fail_reportf "tree changed across round trip:@.%s" src)

(* --- diagnostics ---------------------------------------------------- *)

(* Exact file:line:col and wording: diagnostics are UI contract. Each
   case is (name, source, expected messages in order). *)
let diag_cases =
  [ ( "lexer: single =",
      "scenario s\nrun r {\n  assert { peak_masks = 3 }\n}\n",
      [ "t.pis:3:23: expected '==' (single '=' is not an operator)" ] );
    ( "lexer: bad octet",
      "scenario s\npolicy p {\n  allow src 10.0.0.999/32\n}\n",
      [ "t.pis:3:13: octet 999 out of range in IP address" ] );
    ( "lexer: prefix too long",
      "scenario s\npolicy p {\n  allow src 10.0.0.0/33\n}\n",
      [ "t.pis:3:22: prefix length /33 out of range (0..32)" ] );
    ( "lexer: host bits set",
      "scenario s\npolicy p {\n  allow src 10.0.0.9/24\n}\n",
      [ "t.pis:3:13: host bits set in prefix 10.0.0.9/24 (aligned base: \
         10.0.0.0)" ] );
    ( "lexer: letter after number",
      "scenario s\ntraffic {\n  duration 40s\n}\n",
      [ "t.pis:3:12: malformed number (letter follows \"40\")" ] );
    ( "parser: duplicate field",
      "scenario s\ntraffic {\n  duration 10\n  duration 20\n}\n",
      [ "t.pis:4:3: duplicate duration" ] );
    ( "parser: empty allow",
      "scenario s\npolicy p {\n  allow\n}\n",
      [ "t.pis:3:3: allow needs at least one of src, proto, sport, dport" ] );
    ( "validate: unknown tenant",
      "scenario s\n\
       topology {\n\
      \  tenant victim { port 2 }\n\
       }\n\
       traffic {\n\
      \  victim { tenant nosuch }\n\
       }\n\
       run r {\n\
       }\n",
      [ "t.pis:6:19: unknown tenant nosuch" ] );
    ( "validate: victim on the wrong port",
      "scenario s\n\
       topology {\n\
      \  tenant v { port 5 }\n\
       }\n\
       traffic {\n\
      \  victim { tenant v }\n\
       }\n\
       run r {\n\
       }\n",
      [ "t.pis:6:19: tenant v is bound to port 5 but the victim role \
         requires port 2 (engine pin)" ] );
    ( "validate: k8s cannot pin source ports",
      "scenario s\n\
       policy evil {\n\
      \  dialect k8s\n\
      \  allow src 10.0.0.10/32 sport 53 dport 80\n\
       }\n\
       traffic {\n\
      \  attack { policy evil }\n\
       }\n\
       run r {\n\
       }\n",
      [ "t.pis:3:11: dialect k8s cannot express source-port matches \xe2\x80\x94 \
         the paper's point; use calico" ] );
    ( "validate: unknown metric",
      "scenario s\n\
       run r {\n\
      \  assert { masks_peak >= 1 }\n\
       }\n",
      [ "t.pis:3:12: unknown metric masks_peak (valid: peak_masks, \
         final_masks, final_megaflows, pre_gbps, post_gbps, upcalls, \
         upcall_drops, packets)" ] );
    ( "validate: post_gbps needs an attack",
      "scenario s\n\
       run r {\n\
      \  assert { post_gbps <= 0.5 }\n\
       }\n",
      [ "t.pis:3:12: post_gbps is undefined without an attack (no attack \
         block in traffic)" ] );
    ( "validate: no runs",
      "scenario s\n",
      [ "t.pis:1:10: at least one run block is required" ] );
    ( "validate: several mistakes, all reported",
      "scenario s\n\
       policy orphan {\n\
      \  allow src 10.0.0.0/8\n\
       }\n\
       traffic {\n\
      \  attack { policy evil }\n\
       }\n\
       run r {\n\
      \  shards 0\n\
       }\n\
       run r {\n\
       }\n",
      [ "t.pis:2:8: policy orphan is unused: neither the victim tenant's \
         whitelist nor the policy named by the attack block";
        "t.pis:6:19: unknown policy evil";
        "t.pis:9:10: shards must be >= 1 (got 0)";
        "t.pis:11:5: duplicate run r" ] ) ]

let check_diags name src expected () =
  let got =
    match Parser.parse ~file:"t.pis" src with
    | Error d -> [ Diag.to_string d ]
    | Ok prog ->
      (match Validate.check prog with
       | Error ds -> List.map Diag.to_string ds
       | Ok _ -> [])
  in
  Alcotest.(check (list string)) name expected got

let diag_tests =
  List.map
    (fun (name, src, expected) ->
      Alcotest.test_case name `Quick (check_diags name src expected))
    diag_cases

(* --- DSL / OCaml equivalence --------------------------------------- *)

(* dune runtest runs with cwd _build/default/test (deps are staged one
   level up); fall back so `dune exec test/main.exe` from the project
   root works too. *)
let resolve rel =
  if Sys.file_exists rel then rel
  else Filename.concat "_build/default/test" rel

let load_pis path =
  let path = resolve path in
  match Parser.parse_file path with
  | Error d -> Alcotest.failf "parse %s: %s" path (Diag.to_string d)
  | Ok prog ->
    (match Validate.check prog with
     | Error ds ->
       Alcotest.failf "validate %s: %s" path
         (String.concat "; " (List.map Diag.to_string ds))
     | Ok v -> v)

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  nl = 0 || go 0

(* fig3.pis spells out the default scenario with a compressed timeline;
   its lowering must be exactly the record a library caller would
   build. *)
let test_fig3_params () =
  let open Pi_sim in
  let v = load_pis "../examples/fig3.pis" in
  let rc = List.hd v.Validate.runs in
  let p = Interp.params_of_run v rc in
  let expected =
    { Scenario.default_params with
      Scenario.seed = 48879L;
      duration = 40.;
      attack = Some { Scenario.default_attack with Scenario.start = 10. } }
  in
  Alcotest.(check int64) "seed" expected.Scenario.seed p.Scenario.seed;
  Alcotest.(check (float 0.)) "duration" expected.Scenario.duration
    p.Scenario.duration;
  Alcotest.(check (float 0.)) "tick" expected.Scenario.tick p.Scenario.tick;
  Alcotest.(check (float 0.)) "offered"
    expected.Scenario.victim_offered_gbps p.Scenario.victim_offered_gbps;
  Alcotest.(check int) "pkt_len" expected.Scenario.victim_pkt_len
    p.Scenario.victim_pkt_len;
  Alcotest.(check int) "flows" expected.Scenario.victim_flows
    p.Scenario.victim_flows;
  Alcotest.(check (float 0.)) "churn" expected.Scenario.victim_churn
    p.Scenario.victim_churn;
  Alcotest.(check int) "samples" expected.Scenario.victim_samples_per_tick
    p.Scenario.victim_samples_per_tick;
  Alcotest.(check string) "allowed net"
    (Pi_pkt.Ipv4_addr.Prefix.to_string expected.Scenario.victim_allowed_net)
    (Pi_pkt.Ipv4_addr.Prefix.to_string p.Scenario.victim_allowed_net);
  Alcotest.(check int) "services" expected.Scenario.background_services
    p.Scenario.background_services;
  Alcotest.(check int) "shards" expected.Scenario.n_shards p.Scenario.n_shards;
  Alcotest.(check int) "batch" expected.Scenario.batch_size
    p.Scenario.batch_size;
  Alcotest.(check bool) "pmd runs keep backend=None" true
    (p.Scenario.backend = None);
  match (p.Scenario.attack, expected.Scenario.attack) with
  | Some a, Some e ->
    Alcotest.(check bool) "attack record" true (a = e)
  | _ -> Alcotest.fail "expected an armed attack"

(* Same seed => identical mask counts and stats: running the hand-built
   params through Scenario.run must reproduce the numbers in the
   interpreter's golden JSON for fig3.pis. One scenario run (~4 s). *)
let test_fig3_report_matches_golden () =
  let open Pi_sim in
  let v = load_pis "../examples/fig3.pis" in
  let rc = List.hd v.Validate.runs in
  let r = Scenario.run (Interp.params_of_run v rc) in
  let ic = open_in (resolve "../examples/golden/fig3.json") in
  let n = in_channel_length ic in
  let golden = really_input_string ic n in
  close_in ic;
  let expect_line what line =
    if not (contains ~needle:line golden) then
      Alcotest.failf "%s: %S not found in golden/fig3.json" what line
  in
  let st = r.Scenario.final_stats in
  expect_line "peak masks"
    (Printf.sprintf "\"peak_masks\": %d," r.Scenario.peak_masks);
  expect_line "final masks"
    (Printf.sprintf "\"final_masks\": %d," st.Pi_ovs.Dataplane.masks);
  expect_line "final megaflows"
    (Printf.sprintf "\"final_megaflows\": %d," st.Pi_ovs.Dataplane.megaflows);
  expect_line "packets"
    (Printf.sprintf "\"packets\": %d," st.Pi_ovs.Dataplane.packets);
  expect_line "upcalls"
    (Printf.sprintf "\"upcalls\": %d," st.Pi_ovs.Dataplane.upcalls);
  expect_line "pre gbps"
    (Printf.sprintf "\"pre_gbps\": %s,"
       (Interp.float_str r.Scenario.pre_attack_mean_gbps));
  expect_line "post gbps"
    (Printf.sprintf "\"post_gbps\": %s,"
       (Interp.float_str r.Scenario.post_attack_mean_gbps))

(* --- interpreter surface ------------------------------------------- *)

let tiny_src =
  "scenario tiny\n\
   traffic {\n\
  \  seed 7\n\
  \  duration 3\n\
  \  victim { flows 60 samples_per_tick 30 }\n\
   }\n\
   run tiny {\n\
  \  backend cacheless\n\
  \  assert { peak_masks == 0 }\n\
   }\n"

let test_interp_json_shape () =
  let v =
    match Parser.parse ~file:"tiny.pis" tiny_src with
    | Error d -> Alcotest.failf "parse: %s" (Diag.to_string d)
    | Ok prog ->
      (match Validate.check prog with
       | Error ds ->
         Alcotest.failf "validate: %s"
           (String.concat "; " (List.map Diag.to_string ds))
       | Ok v -> v)
  in
  let oc = Interp.run v in
  Alcotest.(check bool) "assertions hold" true (Interp.passed oc);
  let json = Interp.json oc in
  let j2 = Interp.json oc in
  Alcotest.(check string) "rendering is deterministic" json j2;
  Alcotest.(check bool) "newline-terminated" true
    (String.length json > 0 && json.[String.length json - 1] = '\n');
  List.iter
    (fun needle ->
      if not (contains ~needle json) then
        Alcotest.failf "%S missing from json:\n%s" needle json)
    [ "\"scenario\": \"tiny\"";
      "\"seed\": 7";
      "\"backend\": \"cacheless\"";
      "{ \"metric\": \"peak_masks\", \"cmp\": \"==\", \"value\": 0, \
       \"actual\": 0, \"ok\": true }";
      "\"ok\": true" ]

let suite =
  [ roundtrip ]
  @ diag_tests
  @ [ Alcotest.test_case "fig3.pis lowers to the default-params record"
        `Quick test_fig3_params;
      Alcotest.test_case "fig3 golden JSON = direct Scenario.run numbers"
        `Slow test_fig3_report_matches_golden;
      Alcotest.test_case "interpreter JSON is stable and self-describing"
        `Quick test_interp_json_shape ]
