open Pi_ovs
open Pi_classifier
open Helpers

let mk ?(capacity = 64) ?(insert_inv_prob = 1) () =
  Emc.create ~capacity ~insert_inv_prob (Pi_pkt.Prng.create 1L) ()

let flow i = Flow.make ~ip_src:(Int32.of_int i) ~tp_src:(i land 0xFFFF) ()

let test_hit_miss () =
  let e = mk () in
  let f = flow 1 in
  Alcotest.(check (option string)) "miss" None (Emc.lookup e f);
  Emc.insert e f "v";
  Alcotest.(check (option string)) "hit" (Some "v") (Emc.lookup e f);
  Alcotest.(check int) "hits" 1 (Emc.hits e);
  Alcotest.(check int) "misses" 1 (Emc.misses e)

let test_capacity_pow2 () =
  let e = Emc.create ~capacity:100 ~insert_inv_prob:1 (Pi_pkt.Prng.create 1L) () in
  Alcotest.(check int) "rounded to 128" 128 (Emc.capacity e)

let test_exact_match_only () =
  let e = mk () in
  Emc.insert e (flow 1) "v";
  Alcotest.(check (option string)) "different flow misses" None
    (Emc.lookup e (flow 2))

let test_eviction_on_collision () =
  (* Capacity 1: every flow maps to the same slot. *)
  let e = mk ~capacity:1 () in
  Emc.insert e (flow 1) "a";
  Emc.insert e (flow 2) "b";
  Alcotest.(check (option string)) "old evicted" None (Emc.lookup e (flow 1));
  Alcotest.(check (option string)) "new present" (Some "b") (Emc.lookup e (flow 2));
  Alcotest.(check int) "occupancy stays 1" 1 (Emc.occupancy e)

let test_probabilistic_insert () =
  let e = Emc.create ~capacity:1024 ~insert_inv_prob:100 (Pi_pkt.Prng.create 7L) () in
  let inserted = ref 0 in
  for i = 0 to 999 do
    Emc.insert e (flow i) "x";
    ignore i
  done;
  inserted := Emc.occupancy e;
  (* Expect ~10 of 1000 at 1/100 (allow generous slack). *)
  if !inserted > 40 then Alcotest.failf "too many inserts: %d" !inserted;
  if !inserted = 0 then Alcotest.fail "no inserts at all"

let test_insert_forced () =
  let e = Emc.create ~capacity:64 ~insert_inv_prob:1_000_000 (Pi_pkt.Prng.create 7L) () in
  Emc.insert_forced e (flow 1) "v";
  Alcotest.(check (option string)) "forced insert hit" (Some "v")
    (Emc.lookup e (flow 1))

let test_invalidate_if () =
  let e = mk () in
  Emc.insert e (flow 1) "dead";
  Emc.insert e (flow 2) "live";
  let n = Emc.invalidate_if e (fun v -> v = "dead") in
  Alcotest.(check int) "one invalidated" 1 n;
  Alcotest.(check (option string)) "dead gone" None (Emc.lookup e (flow 1));
  Alcotest.(check (option string)) "live stays" (Some "live") (Emc.lookup e (flow 2))

let test_clear () =
  let e = mk () in
  Emc.insert e (flow 1) "v";
  Emc.clear e;
  Alcotest.(check int) "empty" 0 (Emc.occupancy e);
  Alcotest.(check (option string)) "miss after clear" None (Emc.lookup e (flow 1))

let test_reset_stats () =
  let e = mk () in
  ignore (Emc.lookup e (flow 1));
  Emc.reset_stats e;
  Alcotest.(check int) "hits reset" 0 (Emc.hits e);
  Alcotest.(check int) "misses reset" 0 (Emc.misses e)

let test_dead_entry_counts_as_miss () =
  let e =
    Emc.create ~capacity:8 ~insert_inv_prob:1 ~valid:(fun v -> v <> "dead")
      (Pi_pkt.Prng.create 1L) ()
  in
  let f = flow 1 in
  Emc.insert e f "dead";
  (* A cached value the create-time validity predicate rejects (a stale
     reference to an evicted megaflow) must count as a miss, not a hit —
     and the dead slot is reclaimed on the spot. *)
  Alcotest.(check (option string)) "dead entry rejected" None
    (Emc.lookup e f);
  Alcotest.(check int) "no phantom hit" 0 (Emc.hits e);
  Alcotest.(check int) "counted as miss" 1 (Emc.misses e);
  Alcotest.(check int) "dead slot evicted" 0 (Emc.occupancy e);
  (* The slot is free for reuse. *)
  Emc.insert e f "live";
  Alcotest.(check (option string)) "live value accepted" (Some "live")
    (Emc.lookup e f);
  Alcotest.(check int) "real hit counted" 1 (Emc.hits e)

let test_invalid_args () =
  (match Emc.create ~capacity:0 (Pi_pkt.Prng.create 1L) () with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "capacity 0 should raise");
  match Emc.create ~insert_inv_prob:0 (Pi_pkt.Prng.create 1L) () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "inv prob 0 should raise"

let prop_insert_then_lookup =
  qtest "forced insert then lookup" gen_flow (fun f ->
      let e = mk ~capacity:4096 () in
      Emc.insert_forced e f 42;
      Emc.lookup e f = Some 42)

let suite =
  [ Alcotest.test_case "hit/miss" `Quick test_hit_miss;
    Alcotest.test_case "capacity power of two" `Quick test_capacity_pow2;
    Alcotest.test_case "exact match only" `Quick test_exact_match_only;
    Alcotest.test_case "collision evicts" `Quick test_eviction_on_collision;
    Alcotest.test_case "probabilistic insert" `Quick test_probabilistic_insert;
    Alcotest.test_case "insert_forced" `Quick test_insert_forced;
    Alcotest.test_case "invalidate_if" `Quick test_invalidate_if;
    Alcotest.test_case "clear" `Quick test_clear;
    Alcotest.test_case "reset stats" `Quick test_reset_stats;
    Alcotest.test_case "dead entry counts as miss" `Quick test_dead_entry_counts_as_miss;
    Alcotest.test_case "invalid args" `Quick test_invalid_args;
    prop_insert_then_lookup ]
